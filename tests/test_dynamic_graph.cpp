// Unit tests for graph::DynamicGraph — the mutation/query contract every
// engine depends on.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/dynamic_graph.hpp"

namespace {

using dmis::graph::DynamicGraph;
using dmis::graph::edge_key;
using dmis::graph::NodeId;

TEST(EdgeKey, OrderInsensitive) {
  EXPECT_EQ(edge_key(3, 7), edge_key(7, 3));
  EXPECT_NE(edge_key(3, 7), edge_key(3, 8));
}

TEST(DynamicGraph, StartsEmpty) {
  DynamicGraph g;
  EXPECT_EQ(g.node_count(), 0U);
  EXPECT_EQ(g.edge_count(), 0U);
  EXPECT_EQ(g.id_bound(), 0U);
}

TEST(DynamicGraph, PreSizedConstructor) {
  DynamicGraph g(5);
  EXPECT_EQ(g.node_count(), 5U);
  for (NodeId v = 0; v < 5; ++v) EXPECT_TRUE(g.has_node(v));
  EXPECT_FALSE(g.has_node(5));
}

TEST(DynamicGraph, AddNodeAssignsSequentialIds) {
  DynamicGraph g;
  EXPECT_EQ(g.add_node(), 0U);
  EXPECT_EQ(g.add_node(), 1U);
  EXPECT_EQ(g.add_node(), 2U);
}

TEST(DynamicGraph, IdsNeverReused) {
  DynamicGraph g(3);
  g.remove_node(1);
  EXPECT_EQ(g.add_node(), 3U);
  EXPECT_FALSE(g.has_node(1));
  EXPECT_EQ(g.node_count(), 3U);
  EXPECT_EQ(g.id_bound(), 4U);
}

TEST(DynamicGraph, AddEdgeSymmetric) {
  DynamicGraph g(3);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_EQ(g.degree(0), 1U);
  EXPECT_EQ(g.degree(1), 1U);
  EXPECT_EQ(g.degree(2), 0U);
}

TEST(DynamicGraph, DuplicateEdgeRejected) {
  DynamicGraph g(2);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(1, 0));
  EXPECT_EQ(g.edge_count(), 1U);
  EXPECT_EQ(g.degree(0), 1U);
}

TEST(DynamicGraph, RemoveEdge) {
  DynamicGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_TRUE(g.remove_edge(0, 1));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(g.remove_edge(0, 1));
  EXPECT_EQ(g.edge_count(), 1U);
  EXPECT_EQ(g.degree(1), 1U);
}

TEST(DynamicGraph, RemoveNodeDropsIncidentEdges) {
  DynamicGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.add_edge(1, 2);
  g.remove_node(0);
  EXPECT_FALSE(g.has_node(0));
  EXPECT_EQ(g.edge_count(), 1U);
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_EQ(g.degree(1), 1U);
  EXPECT_EQ(g.degree(2), 1U);
  EXPECT_EQ(g.degree(3), 0U);
}

TEST(DynamicGraph, NeighborsMatchEdges) {
  DynamicGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  const auto view = g.neighbors(0);
  std::vector<NodeId> n0(view.begin(), view.end());
  std::sort(n0.begin(), n0.end());
  EXPECT_EQ(n0, (std::vector<NodeId>{1, 2}));
}

TEST(DynamicGraph, NodesListsLiveOnly) {
  DynamicGraph g(4);
  g.remove_node(2);
  EXPECT_EQ(g.nodes(), (std::vector<NodeId>{0, 1, 3}));
}

TEST(DynamicGraph, EdgesRoundTrip) {
  DynamicGraph g(4);
  g.add_edge(2, 0);
  g.add_edge(3, 1);
  auto edges = g.edges();
  std::sort(edges.begin(), edges.end());
  EXPECT_EQ(edges, (std::vector<std::pair<NodeId, NodeId>>{{0, 2}, {1, 3}}));
}

TEST(DynamicGraph, EqualityIgnoresConstructionOrder) {
  DynamicGraph a(3);
  a.add_edge(0, 1);
  a.add_edge(1, 2);
  DynamicGraph b(3);
  b.add_edge(1, 2);
  b.add_edge(0, 1);
  EXPECT_TRUE(a == b);
  b.remove_edge(0, 1);
  EXPECT_FALSE(a == b);
}

TEST(DynamicGraph, CopyIsIndependent) {
  DynamicGraph a(3);
  a.add_edge(0, 1);
  DynamicGraph b = a;
  b.add_edge(1, 2);
  EXPECT_EQ(a.edge_count(), 1U);
  EXPECT_EQ(b.edge_count(), 2U);
}

TEST(DynamicGraphDeath, SelfLoopRejected) {
  DynamicGraph g(2);
  EXPECT_DEATH((void)g.add_edge(1, 1), "self-loops");
}

TEST(DynamicGraphDeath, EdgeToMissingNodeRejected) {
  DynamicGraph g(2);
  EXPECT_DEATH((void)g.add_edge(0, 5), "has_node");
}

TEST(DynamicGraphDeath, RemoveMissingNodeRejected) {
  DynamicGraph g(2);
  g.remove_node(0);
  EXPECT_DEATH(g.remove_node(0), "has_node");
}

TEST(DynamicGraph, LargeRandomConsistency) {
  DynamicGraph g(200);
  // Deterministic pseudo-random edge pattern; verify counts stay consistent.
  std::size_t expected = 0;
  for (NodeId u = 0; u < 200; ++u) {
    for (NodeId v = u + 1; v < 200; v += (u % 7) + 2) {
      if (g.add_edge(u, v)) ++expected;
    }
  }
  EXPECT_EQ(g.edge_count(), expected);
  std::size_t degree_sum = 0;
  for (const NodeId v : g.nodes()) degree_sum += g.degree(v);
  EXPECT_EQ(degree_sum, 2 * expected);
}

}  // namespace
