// Unit tests for CascadeEngine, the production sequential engine.
#include <gtest/gtest.h>

#include "core/cascade_engine.hpp"
#include "core/greedy_mis.hpp"
#include "graph/generators.hpp"
#include "graph/graph_stats.hpp"

namespace {

using namespace dmis::core;

TEST(CascadeEngine, PathBasics) {
  CascadeEngine engine(0);
  for (NodeId v = 0; v < 4; ++v) engine.priorities().set_key(v, v);
  (void)engine.add_node();
  (void)engine.add_node({0});
  (void)engine.add_node({1});
  (void)engine.add_node({2});
  EXPECT_TRUE(engine.in_mis(0));
  EXPECT_FALSE(engine.in_mis(1));
  EXPECT_TRUE(engine.in_mis(2));
  EXPECT_FALSE(engine.in_mis(3));
  engine.verify();
}

TEST(CascadeEngine, ConstructFromGraphMatchesOracle) {
  dmis::util::Rng rng(3);
  const auto g = dmis::graph::erdos_renyi(100, 0.05, rng);
  CascadeEngine engine(g, 42);
  PriorityMap oracle_pri(42);
  const auto oracle = greedy_mis(g, oracle_pri);
  for (const NodeId v : g.nodes()) EXPECT_EQ(engine.in_mis(v), oracle[v]);
}

TEST(CascadeEngine, EdgeInsertCascadeChain) {
  // Chain where one insertion flips alternating memberships down the path.
  CascadeEngine engine(0);
  for (NodeId v = 0; v < 6; ++v) engine.priorities().set_key(v, v);
  (void)engine.add_node();          // 0
  (void)engine.add_node();          // 1 (isolated M)
  (void)engine.add_node({1});       // 2
  (void)engine.add_node({2});       // 3
  (void)engine.add_node({3});       // 4
  (void)engine.add_node({4});       // 5
  // Memberships: 0:M 1:M 2:out 3:M 4:out 5:M.
  const auto rep = engine.add_edge(0, 1);
  // 1 leaves, 2 joins, 3 leaves, 4 joins, 5 leaves.
  EXPECT_EQ(rep.adjustments, 5U);
  EXPECT_EQ(rep.changed, (std::vector<NodeId>{1, 2, 3, 4, 5}));
  engine.verify();
}

TEST(CascadeEngine, AdjustmentsMatchMembershipDiff) {
  dmis::util::Rng rng(9);
  CascadeEngine engine(17);
  std::vector<NodeId> live;
  for (int i = 0; i < 40; ++i) live.push_back(engine.add_node());
  for (int step = 0; step < 400; ++step) {
    const auto before = engine.membership();
    std::uint64_t reported = 0;
    const double roll = rng.real01();
    if (roll < 0.5) {
      const NodeId u = live[rng.below(live.size())];
      const NodeId v = live[rng.below(live.size())];
      if (u == v || engine.graph().has_edge(u, v)) continue;
      reported = engine.add_edge(u, v).adjustments;
    } else {
      const auto edges = engine.graph().edges();
      if (edges.empty()) continue;
      const auto& [u, v] = edges[rng.below(edges.size())];
      reported = engine.remove_edge(u, v).adjustments;
    }
    const auto after = engine.membership();
    std::uint64_t diff = 0;
    for (std::size_t v = 0; v < after.size(); ++v)
      diff += (v < before.size() && before[v]) != after[v] ? 1 : 0;
    EXPECT_EQ(reported, diff);
  }
}

TEST(CascadeEngine, EvaluatedAtLeastAdjustments) {
  CascadeEngine engine(21);
  std::vector<NodeId> live;
  for (int i = 0; i < 20; ++i)
    live.push_back(engine.add_node(i > 0 ? std::vector<NodeId>{live.back()}
                                         : std::vector<NodeId>{}));
  dmis::util::Rng rng(5);
  for (int step = 0; step < 100; ++step) {
    const NodeId u = live[rng.below(live.size())];
    const NodeId v = live[rng.below(live.size())];
    if (u == v) continue;
    const auto rep = engine.graph().has_edge(u, v) ? engine.remove_edge(u, v)
                                                   : engine.add_edge(u, v);
    EXPECT_GE(rep.evaluated, rep.adjustments);
  }
}

TEST(CascadeEngine, RemoveNodeSkipsNonMembers) {
  CascadeEngine engine(0);
  for (NodeId v = 0; v < 3; ++v) engine.priorities().set_key(v, v);
  (void)engine.add_node();
  (void)engine.add_node({0});
  (void)engine.add_node({1});
  const auto rep = engine.remove_node(1);  // non-member
  EXPECT_EQ(rep.adjustments, 0U);
  EXPECT_EQ(rep.evaluated, 0U);
  engine.verify();
}

TEST(CascadeEngine, MisSetMatchesMembership) {
  dmis::util::Rng rng(13);
  const auto g = dmis::graph::erdos_renyi(50, 0.1, rng);
  CascadeEngine engine(g, 7);
  const auto set = engine.mis_set();
  for (const NodeId v : g.nodes()) EXPECT_EQ(set.contains(v), engine.in_mis(v));
  EXPECT_TRUE(dmis::graph::is_maximal_independent_set(g, set));
}

}  // namespace
