// Failure injection: the repair pass as a recovery primitive.
//
// The paper's model assumes the system is stable between changes; this
// suite stresses what the implementation does *outside* that contract —
// arbitrary state corruption (bit flips in the membership of many nodes at
// once, as after a partial crash-restore) must be fully healed by a single
// increasing-π repair pass seeded with the corrupted nodes, landing back on
// the unique greedy MIS. This is the self-stabilizing flavor the related
// work (§1.2) aims for, obtained here for free from the invariant's
// structure.
#include <gtest/gtest.h>

#include "core/cascade_engine.hpp"
#include "core/greedy_mis.hpp"
#include "graph/generators.hpp"
#include "graph/graph_stats.hpp"
#include "util/stats.hpp"

namespace {

using namespace dmis::core;

TEST(Repair, SeededWithEveryNodeHealsAnyStart) {
  // Build an engine, then rebuild its membership from a cold start by
  // seeding the repair pass with every live node. Works regardless of the
  // (arbitrary) starting configuration the engine happens to hold.
  dmis::util::Rng rng(3);
  const auto g = dmis::graph::erdos_renyi(60, 0.1, rng);
  CascadeEngine engine(g, 7);
  engine.verify();
  const auto before = engine.membership();

  // A full-reseed repair on an already-correct structure changes nothing
  // (idempotence) and evaluates every node exactly once.
  const auto report = engine.repair(engine.graph().nodes());
  EXPECT_EQ(report.adjustments, 0U);
  EXPECT_EQ(report.evaluated, g.node_count());
  EXPECT_EQ(engine.membership(), before);
  engine.verify();
}

TEST(Repair, HealsAfterRawMutationStorm) {
  // Apply a storm of raw (unrepaired) mutations — the state is arbitrary
  // garbage with respect to the new topology — then repair from the touched
  // frontier and check the oracle.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    dmis::util::Rng rng(seed + 50);
    const auto g = dmis::graph::erdos_renyi(40, 0.12, rng);
    CascadeEngine engine(g, seed);

    std::vector<NodeId> touched;
    for (int i = 0; i < 25; ++i) {
      const auto u = static_cast<NodeId>(rng.below(40));
      const auto v = static_cast<NodeId>(rng.below(40));
      if (u == v || !engine.graph().has_node(u) || !engine.graph().has_node(v))
        continue;
      if (engine.graph().has_edge(u, v)) engine.raw_remove_edge(u, v);
      else engine.raw_add_edge(u, v);
      touched.push_back(u);
      touched.push_back(v);
    }
    (void)engine.repair(std::move(touched));
    engine.verify();
    EXPECT_TRUE(dmis::graph::is_maximal_independent_set(engine.graph(),
                                                        engine.mis_set()));
  }
}

TEST(Repair, PartialSeedHealsOnlyDownstream) {
  // Seeding a single node repairs its downstream cone; combined with
  // upstream-complete seeds it is exactly the single-change update. This
  // pins the contract that repair() never touches nodes outside the cone.
  CascadeEngine engine(0);
  for (NodeId v = 0; v < 6; ++v) engine.priorities().set_key(v, v);
  (void)engine.add_node();        // 0
  (void)engine.add_node({0});     // 1
  (void)engine.add_node({1});     // 2
  (void)engine.add_node({2});     // 3
  (void)engine.add_node();        // 4 isolated
  (void)engine.add_node({4});     // 5
  const auto before = engine.membership();
  const auto report = engine.repair({2});
  EXPECT_EQ(report.adjustments, 0U);
  EXPECT_EQ(engine.membership(), before);
  // Node 4's component was never evaluated.
  EXPECT_LE(report.evaluated, 2U);
}

TEST(Repair, DeadSeedsAreIgnored) {
  CascadeEngine engine(5);
  const NodeId a = engine.add_node();
  const NodeId b = engine.add_node({a});
  engine.remove_node(b);
  const auto report = engine.repair({b, a});
  EXPECT_EQ(report.adjustments, 0U);
  engine.verify();
}

TEST(Repair, MassCorruptionViaColdEngine) {
  // Adversarial "restore from a stale checkpoint": copy the topology into a
  // fresh engine whose membership comes from *different* priorities (i.e.,
  // wrong for the target priorities), then heal by full repair with the
  // target priorities pinned.
  dmis::util::Rng rng(77);
  const auto g = dmis::graph::watts_strogatz(80, 6, 0.2, rng);
  CascadeEngine donor(g, /*seed=*/111);   // the "stale" configuration
  CascadeEngine target(g, /*seed=*/222);  // the configuration we must reach

  CascadeEngine patient(g, /*seed=*/111);
  // Re-pin the patient's priorities to the target's and heal.
  for (const NodeId v : g.nodes())
    patient.priorities().set_key(v, target.priorities().key(v));
  const auto report = patient.repair(g.nodes());
  for (const NodeId v : g.nodes())
    EXPECT_EQ(patient.in_mis(v), target.in_mis(v));
  EXPECT_GT(report.adjustments, 0U);  // the stale state really was wrong
  patient.verify();
}

TEST(Repair, StormStatisticsStayLocal) {
  // Even for large raw storms, repair work is proportional to the touched
  // region, not to n.
  dmis::util::Rng rng(99);
  const auto g = dmis::graph::random_avg_degree(2000, 6.0, rng);
  CascadeEngine engine(g, 5);
  std::vector<NodeId> touched;
  for (int i = 0; i < 10; ++i) {
    const auto u = static_cast<NodeId>(rng.below(2000));
    const auto v = static_cast<NodeId>(rng.below(2000));
    if (u == v) continue;
    if (engine.graph().has_edge(u, v)) engine.raw_remove_edge(u, v);
    else engine.raw_add_edge(u, v);
    touched.push_back(u);
    touched.push_back(v);
  }
  const auto report = engine.repair(std::move(touched));
  engine.verify();
  EXPECT_LT(report.evaluated, 200U);  // ≪ n = 2000
}

}  // namespace
