// Statistical validation of Theorem 1: for any single topology change, the
// expected size of the influenced set S (and hence the expected number of
// adjustments) over the random order π is at most 1.
//
// For each (graph, change) pair we average |S| over many independent
// priority seeds — matching the theorem's quantifier structure: worst-case
// change, expectation only over π. A slack of a few standard errors guards
// against flakiness while still distinguishing E[|S|] ≤ 1 from, say, 1.5.
#include <gtest/gtest.h>

#include <tuple>

#include "core/template_engine.hpp"
#include "graph/generators.hpp"
#include "util/stats.hpp"

namespace {

using namespace dmis::core;
using dmis::util::OnlineStats;

/// Average |S| and adjustments for one specific change applied to `g` under
/// many random orders.
struct ChangeStats {
  OnlineStats s_size;
  OnlineStats adjustments;
};

template <typename ChangeFn>
ChangeStats measure(const dmis::graph::DynamicGraph& g, int trials, ChangeFn&& change) {
  ChangeStats stats;
  for (int t = 0; t < trials; ++t) {
    TemplateEngine engine(g, /*priority_seed=*/1000 + t);
    const TemplateReport rep = change(engine);
    stats.s_size.add(static_cast<double>(rep.s_distinct));
    stats.adjustments.add(static_cast<double>(rep.adjustments));
  }
  return stats;
}

class Theorem1Test : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(Theorem1Test, EdgeInsertionExpectationAtMostOne) {
  const auto [n, p] = GetParam();
  dmis::util::Rng rng(7);
  auto g = dmis::graph::erdos_renyi(static_cast<NodeId>(n), p, rng);
  // Worst-ish specific change: connect two fixed non-adjacent nodes.
  NodeId a = 0;
  NodeId b = 1;
  while (g.has_edge(a, b)) ++b;
  const auto stats = measure(g, 400, [a, b](TemplateEngine& e) {
    return e.add_edge(a, b);
  });
  EXPECT_LE(stats.s_size.mean(), 1.0 + 4 * stats.s_size.sem() + 0.05);
  EXPECT_LE(stats.adjustments.mean(), stats.s_size.mean() + 1e-9);
}

TEST_P(Theorem1Test, EdgeDeletionExpectationAtMostOne) {
  const auto [n, p] = GetParam();
  dmis::util::Rng rng(11);
  auto g = dmis::graph::erdos_renyi(static_cast<NodeId>(n), p, rng);
  const auto edges = g.edges();
  ASSERT_FALSE(edges.empty());
  const auto [a, b] = edges[edges.size() / 2];
  const auto stats = measure(g, 400, [a = a, b = b](TemplateEngine& e) {
    return e.remove_edge(a, b);
  });
  EXPECT_LE(stats.s_size.mean(), 1.0 + 4 * stats.s_size.sem() + 0.05);
}

TEST_P(Theorem1Test, NodeDeletionExpectationAtMostOne) {
  const auto [n, p] = GetParam();
  dmis::util::Rng rng(13);
  auto g = dmis::graph::erdos_renyi(static_cast<NodeId>(n), p, rng);
  const NodeId victim = static_cast<NodeId>(n / 2);
  const auto stats = measure(g, 400, [victim](TemplateEngine& e) {
    return e.remove_node(victim);
  });
  EXPECT_LE(stats.s_size.mean(), 1.0 + 4 * stats.s_size.sem() + 0.05);
}

TEST_P(Theorem1Test, NodeInsertionExpectationAtMostOne) {
  const auto [n, p] = GetParam();
  dmis::util::Rng rng(17);
  auto g = dmis::graph::erdos_renyi(static_cast<NodeId>(n), p, rng);
  // Fixed neighbor list for the incoming node.
  std::vector<NodeId> neighbors;
  for (NodeId v = 0; v < static_cast<NodeId>(n); v += 7) neighbors.push_back(v);
  const auto stats = measure(g, 400, [&neighbors](TemplateEngine& e) {
    e.add_node(neighbors);
    return e.last_report();
  });
  EXPECT_LE(stats.s_size.mean(), 1.0 + 4 * stats.s_size.sem() + 0.05);
}

INSTANTIATE_TEST_SUITE_P(GraphSweep, Theorem1Test,
                         ::testing::Combine(::testing::Values(50, 150),
                                            ::testing::Values(0.05, 0.2)));

TEST(Theorem1, StarCenterDeletionIsTheHardCase) {
  // Deleting the star center: with probability 1/n the center was the MIS,
  // in which case all n−1 leaves flip in — E[|S|] is still ≤ 1 + o(1)
  // because S is empty otherwise. The *distribution* is heavy-tailed, which
  // is exactly why the paper's guarantee is in expectation only (§1.1).
  const NodeId n = 60;
  const auto g = dmis::graph::star(n);
  OnlineStats s_size;
  double max_seen = 0;
  for (int t = 0; t < 3000; ++t) {
    TemplateEngine engine(g, 5000 + t);
    const auto rep = engine.remove_node(0);
    s_size.add(static_cast<double>(rep.s_distinct));
    max_seen = std::max(max_seen, static_cast<double>(rep.s_distinct));
  }
  EXPECT_LE(s_size.mean(), 1.0 + 4 * s_size.sem() + 0.05);
  // The tail event does occur: some trial flips the whole star.
  EXPECT_EQ(max_seen, static_cast<double>(n));
}

TEST(Theorem1, TemplateLevelsBoundedByS) {
  // Sanity for Corollary 6's round bound: the number of template levels is
  // at most the number of S-memberships.
  dmis::util::Rng rng(23);
  auto g = dmis::graph::erdos_renyi(80, 0.1, rng);
  for (int t = 0; t < 200; ++t) {
    TemplateEngine engine(g, 7000 + t);
    const auto rep = engine.remove_node(static_cast<NodeId>(t % 80));
    EXPECT_LE(rep.levels, rep.s_memberships);
    // Rebuild is cheap enough; engine is discarded each iteration.
  }
}

}  // namespace
