// Unit tests for DynamicColoring (dynamic MIS over the clique expansion).
#include <gtest/gtest.h>

#include "derived/dynamic_coloring.hpp"
#include "graph/graph_stats.hpp"
#include "util/rng.hpp"

namespace {

using namespace dmis::derived;

TEST(DynamicColoring, SingleNodeGetsAColor) {
  DynamicColoring c(3, 1);
  const NodeId v = c.add_node();
  EXPECT_LT(c.color_of(v), 3U);
  c.verify();
}

TEST(DynamicColoring, EdgeForcesDistinctColors) {
  DynamicColoring c(3, 2);
  const NodeId a = c.add_node();
  const NodeId b = c.add_node();
  c.add_edge(a, b);
  EXPECT_NE(c.color_of(a), c.color_of(b));
  c.verify();
}

TEST(DynamicColoring, TriangleUsesThreeColors) {
  DynamicColoring c(4, 3);
  for (int i = 0; i < 3; ++i) (void)c.add_node();
  c.add_edge(0, 1);
  c.add_edge(1, 2);
  c.add_edge(0, 2);
  EXPECT_EQ(c.palette_used(), 3U);
  c.verify();
}

TEST(DynamicColoring, RemoveEdgeAndNode) {
  DynamicColoring c(5, 4);
  for (int i = 0; i < 4; ++i) (void)c.add_node();
  c.add_edge(0, 1);
  c.add_edge(1, 2);
  c.add_edge(2, 3);
  c.verify();
  c.remove_edge(1, 2);
  c.verify();
  c.remove_node(0);
  c.verify();
  EXPECT_EQ(c.graph().node_count(), 3U);
}

TEST(DynamicColoring, ChurnStaysProper) {
  const NodeId palette = 8;
  DynamicColoring c(palette, 7);
  dmis::util::Rng rng(5);
  std::vector<NodeId> live;
  for (int i = 0; i < 12; ++i) live.push_back(c.add_node());
  for (int step = 0; step < 120; ++step) {
    const double roll = rng.real01();
    if (roll < 0.4) {
      const NodeId u = live[rng.below(live.size())];
      const NodeId v = live[rng.below(live.size())];
      if (u != v && !c.graph().has_edge(u, v) &&
          c.graph().degree(u) + 2 < palette && c.graph().degree(v) + 2 < palette) {
        c.add_edge(u, v);
      }
    } else if (roll < 0.75) {
      const auto edges = c.graph().edges();
      if (!edges.empty()) {
        const auto& [u, v] = edges[rng.below(edges.size())];
        c.remove_edge(u, v);
      }
    } else if (roll < 0.9 || live.size() < 4) {
      live.push_back(c.add_node());
    } else {
      const std::size_t index = rng.below(live.size());
      c.remove_node(live[index]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(index));
    }
    c.verify();
    EXPECT_LE(c.palette_used(), static_cast<std::size_t>(palette));
  }
}

TEST(DynamicColoringDeath, PaletteOverflowRejected) {
  DynamicColoring c(2, 9);
  for (int i = 0; i < 3; ++i) (void)c.add_node();
  c.add_edge(0, 1);
  EXPECT_DEATH(c.add_edge(0, 2), "palette too small");
}

TEST(DynamicColoring, AdjustmentCostReflectsReductionOverhead) {
  // The paper notes the clique-expansion route pays ~2Δ adjustments in the
  // worst case; at minimum it must do work per palette copy on insertion.
  DynamicColoring c(6, 11);
  const NodeId a = c.add_node();
  EXPECT_GE(c.last_adjustments(), 1U);  // one copy joins the expansion MIS
  const NodeId b = c.add_node();
  c.add_edge(a, b);
  // The edge may or may not displace a copy, but never more than palette.
  EXPECT_LE(c.last_adjustments(), 12U);
}

}  // namespace
