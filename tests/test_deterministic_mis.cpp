// Unit tests for the deterministic dynamic MIS baseline and the paper's
// §1.1 lower-bound construction: on K_{k,k}, deleting the MIS side node by
// node forces a single change with k adjustments.
#include <gtest/gtest.h>

#include "baselines/deterministic_mis.hpp"
#include "core/dynamic_mis.hpp"
#include "graph/generators.hpp"
#include "graph/graph_stats.hpp"

namespace {

using namespace dmis::baselines;
using dmis::core::NodeId;

TEST(DeterministicMis, IdOrderGreedyOnPath) {
  DeterministicMis mis;
  (void)mis.add_node();
  (void)mis.add_node({0});
  (void)mis.add_node({1});
  (void)mis.add_node({2});
  EXPECT_TRUE(mis.in_mis(0));
  EXPECT_FALSE(mis.in_mis(1));
  EXPECT_TRUE(mis.in_mis(2));
  EXPECT_FALSE(mis.in_mis(3));
  mis.verify();
}

TEST(DeterministicMis, ReproducibleByConstruction) {
  auto build = [] {
    DeterministicMis mis(dmis::graph::complete_bipartite(4, 4));
    std::vector<bool> out;
    for (NodeId v = 0; v < 8; ++v) out.push_back(mis.in_mis(v));
    return out;
  };
  EXPECT_EQ(build(), build());
}

TEST(DeterministicMis, LowerBoundFlipOnBipartite) {
  const NodeId k = 8;
  DeterministicMis mis(dmis::graph::complete_bipartite(k, k));
  // Id order puts the whole left side (0 … k−1) in the MIS.
  for (NodeId v = 0; v < k; ++v) EXPECT_TRUE(mis.in_mis(v));
  for (NodeId v = k; v < 2 * k; ++v) EXPECT_FALSE(mis.in_mis(v));

  std::uint64_t max_adjustments = 0;
  std::uint64_t total = 0;
  for (NodeId v = 0; v < k; ++v) {
    const auto rep = mis.remove_node(v);
    max_adjustments = std::max(max_adjustments, rep.adjustments);
    total += rep.adjustments;
    mis.verify();
  }
  // The final deletion flips the entire right side in: k adjustments at once.
  EXPECT_EQ(max_adjustments, k);
  EXPECT_EQ(total, k);
  for (NodeId v = k; v < 2 * k; ++v) EXPECT_TRUE(mis.in_mis(v));
}

TEST(DeterministicMis, RandomizedAvoidsTheConcentratedFlip) {
  // Same deletion sequence under random priorities: the flip happens at a
  // uniformly random step, so expected max-per-change is far below k for a
  // single run only when the flip point is late; across seeds the *mean
  // per-change* cost stays ~1 while the deterministic run always pays k at
  // once. Here we check mean-per-change over seeds ≈ 1.
  const NodeId k = 12;
  dmis::util::OnlineStats per_change;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    dmis::core::DynamicMIS mis(dmis::graph::complete_bipartite(k, k), seed);
    for (NodeId v = 0; v < k; ++v) {
      mis.remove_node(v);
      per_change.add(static_cast<double>(mis.last_report().adjustments));
    }
  }
  EXPECT_LE(per_change.mean(), 1.3);
}

TEST(DeterministicMis, MaintainsValidMisUnderChurn) {
  DeterministicMis mis(dmis::graph::grid(5, 5));
  dmis::util::Rng rng(3);
  for (int step = 0; step < 100; ++step) {
    const NodeId u = static_cast<NodeId>(rng.below(25));
    const NodeId v = static_cast<NodeId>(rng.below(25));
    if (u == v || !mis.graph().has_node(u) || !mis.graph().has_node(v)) continue;
    if (mis.graph().has_edge(u, v)) mis.remove_edge(u, v);
    else mis.add_edge(u, v);
    mis.verify();
  }
}

}  // namespace
