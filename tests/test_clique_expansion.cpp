// Unit tests for the coloring reduction's clique-expansion map.
#include <gtest/gtest.h>

#include "graph/clique_expansion.hpp"

namespace {

using namespace dmis::graph;

TEST(CliqueExpansion, NodeBecomesClique) {
  CliqueExpansionMap map(4);
  const auto ids = map.add_graph_node(0);
  EXPECT_EQ(ids.size(), 4U);
  EXPECT_EQ(map.expansion().node_count(), 4U);
  EXPECT_EQ(map.expansion().edge_count(), 6U);
  for (NodeId i = 0; i < 4; ++i) {
    EXPECT_EQ(map.copy(0, i), ids[i]);
    EXPECT_EQ(map.owner(ids[i]), (std::pair<NodeId, NodeId>{0, i}));
  }
}

TEST(CliqueExpansion, EdgeBecomesMatching) {
  CliqueExpansionMap map(3);
  map.add_graph_node(0);
  map.add_graph_node(1);
  const auto pairs = map.add_graph_edge(0, 1);
  EXPECT_EQ(pairs.size(), 3U);
  // 2 cliques of C(3,2)=3 edges each + 3 matching edges.
  EXPECT_EQ(map.expansion().edge_count(), 9U);
  for (NodeId i = 0; i < 3; ++i)
    EXPECT_TRUE(map.expansion().has_edge(map.copy(0, i), map.copy(1, i)));
  EXPECT_FALSE(map.expansion().has_edge(map.copy(0, 0), map.copy(1, 1)));
}

TEST(CliqueExpansion, RemoveEdgeRestores) {
  CliqueExpansionMap map(3);
  map.add_graph_node(0);
  map.add_graph_node(1);
  map.add_graph_edge(0, 1);
  map.remove_graph_edge(0, 1);
  EXPECT_EQ(map.expansion().edge_count(), 6U);
}

TEST(CliqueExpansion, RemoveNodeDropsClique) {
  CliqueExpansionMap map(3);
  map.add_graph_node(0);
  map.add_graph_node(1);
  map.add_graph_edge(0, 1);
  map.remove_graph_edge(0, 1);
  const auto removed = map.remove_graph_node(0);
  EXPECT_EQ(removed.size(), 3U);
  EXPECT_EQ(map.expansion().node_count(), 3U);
  EXPECT_FALSE(map.has_graph_node(0));
  EXPECT_TRUE(map.has_graph_node(1));
}

TEST(CliqueExpansionDeath, DoubleExpandRejected) {
  CliqueExpansionMap map(2);
  map.add_graph_node(0);
  EXPECT_DEATH((void)map.add_graph_node(0), "already expanded");
}

}  // namespace
