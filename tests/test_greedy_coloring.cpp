// Unit tests for the dynamic random-greedy coloring engine (§5 Example 3).
#include <gtest/gtest.h>

#include "derived/greedy_coloring.hpp"
#include "graph/generators.hpp"
#include "graph/graph_stats.hpp"
#include "util/stats.hpp"

namespace {

using namespace dmis::derived;

TEST(GreedyColoring, PinnedOrderOnPath) {
  GreedyColoringEngine engine(0);
  for (NodeId v = 0; v < 4; ++v) engine.priorities().set_key(v, v);
  (void)engine.add_node();
  (void)engine.add_node({0});
  (void)engine.add_node({1});
  (void)engine.add_node({2});
  EXPECT_EQ(engine.color_of(0), 0U);
  EXPECT_EQ(engine.color_of(1), 1U);
  EXPECT_EQ(engine.color_of(2), 0U);
  EXPECT_EQ(engine.color_of(3), 1U);
  engine.verify();
}

TEST(GreedyColoring, PaletteAtMostDegreePlusOne) {
  dmis::util::Rng rng(3);
  const auto g = dmis::graph::random_avg_degree(60, 5.0, rng);
  GreedyColoringEngine engine(g, 7);
  engine.verify();
  const auto max_degree = dmis::graph::degree_summary(g).maximum;
  for (const NodeId v : g.nodes()) EXPECT_LE(engine.color_of(v), max_degree);
}

TEST(GreedyColoring, ChurnKeepsInvariant) {
  GreedyColoringEngine engine(11);
  dmis::util::Rng rng(13);
  std::vector<NodeId> live;
  for (int i = 0; i < 20; ++i) live.push_back(engine.add_node());
  for (int step = 0; step < 250; ++step) {
    const double roll = rng.real01();
    if (roll < 0.45) {
      const NodeId u = live[rng.below(live.size())];
      const NodeId v = live[rng.below(live.size())];
      if (u != v && !engine.graph().has_edge(u, v)) engine.add_edge(u, v);
    } else if (roll < 0.8) {
      const auto edges = engine.graph().edges();
      if (!edges.empty()) {
        const auto& [u, v] = edges[rng.below(edges.size())];
        engine.remove_edge(u, v);
      }
    } else if (roll < 0.9 || live.size() < 4) {
      live.push_back(engine.add_node({live[rng.below(live.size())]}));
    } else {
      const std::size_t index = rng.below(live.size());
      engine.remove_node(live[index]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(index));
    }
    engine.verify();
  }
}

TEST(GreedyColoring, BipartiteMinusPmIsTwoColoredWhp) {
  // §5 Example 3: random-greedy 2-colors K_{k,k} minus a perfect matching
  // with probability 1 − O(1/n). (The paper's sketch counts only the
  // "partner arrives second" bad order; empirically the bad-order
  // probability is ≈ 1.75/n — still vanishing, versus first-fit's
  // guaranteed Θ(n) colors on the adversarial order.)
  auto two_color_rate = [](NodeId k, int trials) {
    const auto g = dmis::graph::bipartite_minus_perfect_matching(k);
    int two_colored = 0;
    for (int t = 0; t < trials; ++t) {
      GreedyColoringEngine engine(g, 100 + 7 * t);
      two_colored += engine.palette_used() == 2 ? 1 : 0;
    }
    return two_colored / static_cast<double>(trials);
  };
  const double rate_small = two_color_rate(10, 600);
  const double rate_large = two_color_rate(30, 600);
  EXPECT_GE(rate_small, 1.0 - 2.5 / 10.0);
  EXPECT_GE(rate_large, 1.0 - 2.5 / 30.0);
  EXPECT_GT(rate_large, rate_small);  // failure probability vanishes with n
}

TEST(GreedyColoring, AdjustmentsCanExceedOne) {
  // The paper's point: unlike the MIS, the greedy coloring may pay ω(1)
  // adjustments per change. Observe at least one multi-adjustment update.
  GreedyColoringEngine engine(17);
  dmis::util::Rng rng(19);
  for (int i = 0; i < 30; ++i) (void)engine.add_node();
  std::uint64_t max_adjustments = 0;
  for (int step = 0; step < 300; ++step) {
    const NodeId u = static_cast<NodeId>(rng.below(30));
    const NodeId v = static_cast<NodeId>(rng.below(30));
    if (u == v) continue;
    const auto rep = engine.graph().has_edge(u, v) ? engine.remove_edge(u, v)
                                                   : engine.add_edge(u, v);
    max_adjustments = std::max(max_adjustments, rep.adjustments);
  }
  EXPECT_GE(max_adjustments, 2U);
}

TEST(GreedyColoring, HistoryIndependentGivenSeed) {
  // Same final graph via different edge orders → same coloring.
  const auto g = dmis::graph::cycle(9);
  GreedyColoringEngine forward(5);
  GreedyColoringEngine backward(5);
  for (NodeId v = 0; v < 9; ++v) {
    (void)forward.add_node();
    (void)backward.add_node();
  }
  auto edges = g.edges();
  std::sort(edges.begin(), edges.end());
  for (const auto& [u, v] : edges) forward.add_edge(u, v);
  for (auto it = edges.rbegin(); it != edges.rend(); ++it)
    backward.add_edge(it->first, it->second);
  for (NodeId v = 0; v < 9; ++v)
    EXPECT_EQ(forward.color_of(v), backward.color_of(v));
}

}  // namespace
