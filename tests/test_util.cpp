// Unit tests for util: RNG determinism and distributions, online statistics,
// histograms, distribution-comparison measures, table rendering, CLI parsing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using dmis::util::Histogram;
using dmis::util::OnlineStats;
using dmis::util::Rng;

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0U);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto x = rng.range(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= x == -3;
    saw_hi |= x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Real01HalfOpen) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.real01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceRate) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleIsUniformish) {
  // Position of element 0 after shuffling 5 items should be ~uniform.
  Histogram h;
  Rng rng(19);
  for (int t = 0; t < 5000; ++t) {
    std::vector<int> v{0, 1, 2, 3, 4};
    rng.shuffle(v);
    h.add(std::find(v.begin(), v.end(), 0) - v.begin());
  }
  for (int pos = 0; pos < 5; ++pos) EXPECT_NEAR(h.fraction(pos), 0.2, 0.03);
}

TEST(Rng, ForkIndependence) {
  Rng parent(23);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, RandomPermutationValid) {
  Rng rng(29);
  const auto perm = dmis::util::random_permutation(100, rng);
  auto sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (std::uint32_t i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(OnlineStats, Moments) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8U);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sum(), 40.0, 1e-12);
}

TEST(OnlineStats, EmptyIsSafe) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0U);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sem(), 0.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats all;
  OnlineStats left;
  OnlineStats right;
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.real01() * 10.0;
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(HistogramTest, CountsAndQuantiles) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.add(1);
  for (int i = 0; i < 30; ++i) h.add(2);
  for (int i = 0; i < 60; ++i) h.add(3);
  EXPECT_EQ(h.total(), 100U);
  EXPECT_DOUBLE_EQ(h.fraction(2), 0.3);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 3);
  EXPECT_NEAR(h.mean(), 2.5, 1e-12);
  EXPECT_EQ(h.quantile(0.05), 1);
  EXPECT_EQ(h.quantile(0.25), 2);
  EXPECT_EQ(h.quantile(0.99), 3);
}

TEST(HistogramTest, TotalVariation) {
  Histogram a;
  Histogram b;
  for (int i = 0; i < 100; ++i) {
    a.add(i % 2);
    b.add(i % 2);
  }
  EXPECT_DOUBLE_EQ(total_variation(a, b), 0.0);
  Histogram c;
  for (int i = 0; i < 100; ++i) c.add(5);
  EXPECT_DOUBLE_EQ(total_variation(a, c), 1.0);
}

TEST(HistogramTest, ChiSquareEqualSamplesIsSmall) {
  Rng rng(37);
  Histogram a;
  Histogram b;
  for (int i = 0; i < 5000; ++i) {
    a.add(static_cast<std::int64_t>(rng.below(6)));
    b.add(static_cast<std::int64_t>(rng.below(6)));
  }
  std::size_t dof = 0;
  const double stat = chi_square_two_sample(a, b, &dof);
  EXPECT_GE(dof, 5U);
  EXPECT_LT(stat, dmis::util::chi_square_critical_001(dof));
}

TEST(HistogramTest, ChiSquareDifferentSamplesIsLarge) {
  Rng rng(41);
  Histogram a;
  Histogram b;
  for (int i = 0; i < 5000; ++i) {
    a.add(static_cast<std::int64_t>(rng.below(6)));
    b.add(static_cast<std::int64_t>(rng.below(3)));  // different support
  }
  std::size_t dof = 0;
  const double stat = chi_square_two_sample(a, b, &dof);
  EXPECT_GT(stat, dmis::util::chi_square_critical_001(dof));
}

TEST(TableTest, RendersMarkdown) {
  dmis::util::Table t({"name", "value"});
  t.row().cell("alpha").cell(std::int64_t{42});
  t.row().cell("beta").cell(1.5, 2);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("| alpha"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
  EXPECT_NE(out.find("| ----"), std::string::npos);
}

TEST(TableTest, PlusMinusCell) {
  dmis::util::Table t({"stat"});
  t.row().cell_pm(1.0, 0.25, 2);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("1.00 ± 0.25"), std::string::npos);
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(dmis::util::format_double(3.14159, 2), "3.14");
  EXPECT_EQ(dmis::util::format_double(2.0, 0), "2");
}

}  // namespace
