// WAL framing under fire: round-trips, segment rotation + seal markers,
// and — through util::FaultFile — the on-disk states a crash actually
// leaves behind: a record torn at an arbitrary byte, a dropped append, a
// failed fsync. The contract (service/wal.hpp, docs/FORMATS.md): a reader
// yields exactly the valid record prefix and classifies the tail
// (kSealed / kEnd / kTorn); a writer whose write or fsync failed is
// poisoned and never advances durable_lsn past what a sync vouched for.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/batch.hpp"
#include "service/wal.hpp"
#include "util/fault_file.hpp"
#include "util/rng.hpp"

namespace {

using namespace dmis;
using service::FsyncPolicy;
using service::WalRecordView;
using service::WalSegmentReader;
using service::WalWriter;
using service::WalWriterOptions;

struct TempDir {
  explicit TempDir(const std::string& name)
      : path((std::filesystem::temp_directory_path() / ("dmis_wal_" + name)).string()) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string path;
};

/// A deterministic mixed batch: edges, removals, add-nodes with neighbor
/// lists (the arena path).
core::Batch make_batch(util::Rng& rng, std::uint32_t ops) {
  core::Batch batch;
  for (std::uint32_t i = 0; i < ops; ++i) {
    switch (rng.next_u64() % 4) {
      case 0:
        batch.add_edge(static_cast<graph::NodeId>(rng.below(1000)),
                       static_cast<graph::NodeId>(rng.below(1000)));
        break;
      case 1:
        batch.remove_edge(static_cast<graph::NodeId>(rng.below(1000)),
                          static_cast<graph::NodeId>(rng.below(1000)));
        break;
      case 2: {
        std::vector<graph::NodeId> nbrs(rng.next_u64() % 5);
        for (auto& v : nbrs) v = static_cast<graph::NodeId>(rng.below(1000));
        batch.add_node(std::span<const graph::NodeId>(nbrs));
        break;
      }
      default:
        batch.remove_node(static_cast<graph::NodeId>(rng.below(1000)));
        break;
    }
  }
  return batch;
}

/// Drain one segment; returns terminal state and appends flattened op
/// tuples (kind, u, v, neighbor ids) so tests can compare against the
/// batches they wrote.
WalSegmentReader::Next drain(const std::string& seg_path,
                             std::vector<std::uint64_t>* flat,
                             std::uint64_t* first_lsn = nullptr,
                             std::uint64_t* end_lsn = nullptr) {
  WalSegmentReader reader;
  std::string error;
  EXPECT_TRUE(reader.open(seg_path, &error)) << error;
  WalRecordView view;
  WalSegmentReader::Next state;
  bool first = true;
  while ((state = reader.next(&view)) == WalSegmentReader::Next::kRecord) {
    if (first && first_lsn != nullptr) *first_lsn = view.lsn;
    first = false;
    if (flat != nullptr) {
      for (const service::WalOpRecord& op : view.ops) {
        flat->push_back(op.kind);
        flat->push_back(op.u);
        flat->push_back(op.v);
        for (std::uint32_t k = 0; k < op.nbr_count; ++k)
          flat->push_back(view.arena[op.nbr_begin + k]);
      }
    }
  }
  if (end_lsn != nullptr) *end_lsn = reader.next_lsn();
  return state;
}

/// The writer-side flattening of a batch, same encoding as drain().
void flatten(const core::Batch& batch, std::vector<std::uint64_t>* flat) {
  for (const core::BatchOp& op : batch.ops()) {
    flat->push_back(static_cast<std::uint64_t>(op.kind));
    flat->push_back(op.u);
    flat->push_back(op.v);
    for (const graph::NodeId v : batch.neighbors_of(op)) flat->push_back(v);
  }
}

TEST(Wal, RoundTripSingleSegment) {
  TempDir dir("roundtrip");
  WalWriter writer;
  std::string error;
  ASSERT_TRUE(writer.open(dir.path, 1, 0, {}, &error)) << error;

  util::Rng rng(7);
  std::vector<std::uint64_t> expect;
  std::uint64_t ops = 0;
  for (int b = 0; b < 20; ++b) {
    const core::Batch batch = make_batch(rng, 1 + b % 7);
    flatten(batch, &expect);
    ops += batch.size();
    ASSERT_TRUE(writer.append(batch, &error)) << error;
    EXPECT_EQ(writer.next_lsn(), ops);
    EXPECT_EQ(writer.durable_lsn(), ops);  // kEveryBatch default syncs per record
  }
  ASSERT_TRUE(writer.close(&error)) << error;

  std::vector<std::uint64_t> got;
  std::uint64_t end_lsn = 0;
  const auto state = drain(service::segment_path(dir.path, 1), &got, nullptr, &end_lsn);
  EXPECT_EQ(state, WalSegmentReader::Next::kSealed);
  EXPECT_EQ(end_lsn, ops);
  EXPECT_EQ(got, expect);
}

TEST(Wal, EveryOpSplitsRecords) {
  TempDir dir("everyop");
  WalWriter writer;
  WalWriterOptions options;
  options.fsync = FsyncPolicy::kEveryOp;
  std::string error;
  ASSERT_TRUE(writer.open(dir.path, 1, 0, options, &error)) << error;
  util::Rng rng(11);
  const core::Batch batch = make_batch(rng, 9);
  for (std::size_t i = 0; i < batch.size(); ++i)
    ASSERT_TRUE(writer.append(batch, i, 1, &error)) << error;
  ASSERT_TRUE(writer.close(&error)) << error;

  WalSegmentReader reader;
  ASSERT_TRUE(reader.open(service::segment_path(dir.path, 1), &error)) << error;
  WalRecordView view;
  std::uint64_t records = 0;
  while (reader.next(&view) == WalSegmentReader::Next::kRecord) {
    EXPECT_EQ(view.ops.size(), 1U);
    EXPECT_EQ(view.lsn, records);
    ++records;
  }
  EXPECT_EQ(records, batch.size());
}

TEST(Wal, RotationSealsAndChainsSegments) {
  TempDir dir("rotate");
  WalWriter writer;
  WalWriterOptions options;
  options.segment_bytes = 512;  // force frequent rotation
  std::string error;
  ASSERT_TRUE(writer.open(dir.path, 1, 0, options, &error)) << error;

  util::Rng rng(13);
  std::vector<std::uint64_t> expect;
  std::uint64_t ops = 0;
  for (int b = 0; b < 40; ++b) {
    const core::Batch batch = make_batch(rng, 1 + b % 5);
    flatten(batch, &expect);
    ops += batch.size();
    ASSERT_TRUE(writer.append(batch, &error)) << error;
  }
  ASSERT_TRUE(writer.close(&error)) << error;

  const auto segments = service::list_segments(dir.path);
  ASSERT_GT(segments.size(), 2U);
  std::vector<std::uint64_t> got;
  std::uint64_t expected_base = 0;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    EXPECT_EQ(segments[i].seq, i + 1);  // contiguous seqs
    EXPECT_EQ(segments[i].base_lsn, expected_base);
    std::uint64_t end_lsn = 0;
    const auto state = drain(segments[i].path, &got, nullptr, &end_lsn);
    EXPECT_EQ(state, WalSegmentReader::Next::kSealed);  // every segment sealed
    expected_base = end_lsn;
  }
  EXPECT_EQ(expected_base, ops);
  EXPECT_EQ(got, expect);
}

TEST(Wal, TornWriteKeepsValidPrefix) {
  // Tear the log at every byte of the final record: whatever the cut
  // point, the reader must yield the full prefix and flag the tail.
  util::Rng rng(17);
  for (const std::uint64_t cut_back : {1ULL, 3ULL, 8ULL, 19ULL, 31ULL}) {
    TempDir dir("torn");
    // First find the clean size with 3 records, then replay with a write
    // budget that tears the last record `cut_back` bytes short.
    std::uint64_t clean_bytes = 0;
    std::vector<core::Batch> batches;
    for (int b = 0; b < 3; ++b) batches.push_back(make_batch(rng, 4));
    {
      TempDir probe("torn_probe");
      WalWriter writer;
      std::string error;
      ASSERT_TRUE(writer.open(probe.path, 1, 0, {}, &error)) << error;
      for (const auto& batch : batches) ASSERT_TRUE(writer.append(batch, &error));
      clean_bytes = writer.bytes_appended();
    }
    util::FaultPlan plan;
    plan.write_budget = clean_bytes - cut_back;
    plan.short_write = true;
    WalWriterOptions options;
    options.file_factory = util::faulty_factory(plan);
    WalWriter writer;
    std::string error;
    ASSERT_TRUE(writer.open(dir.path, 1, 0, options, &error)) << error;
    std::uint64_t ok_ops = 0;
    bool failed = false;
    for (const auto& batch : batches) {
      if (!writer.append(batch, &error)) {
        failed = true;
        break;
      }
      ok_ops += batch.size();
    }
    ASSERT_TRUE(failed);
    EXPECT_EQ(writer.durable_lsn(), ok_ops);  // each prior batch was synced
    // Writer is poisoned from here on.
    EXPECT_FALSE(writer.append(batches[0], &error));
    EXPECT_FALSE(writer.sync(&error));

    std::vector<std::uint64_t> got;
    std::uint64_t end_lsn = 0;
    const auto state = drain(service::segment_path(dir.path, 1), &got, nullptr, &end_lsn);
    EXPECT_EQ(state, WalSegmentReader::Next::kTorn);
    EXPECT_EQ(end_lsn, ok_ops);  // exactly the records before the tear
    std::vector<std::uint64_t> expect;
    std::uint64_t seen = 0;
    for (const auto& batch : batches) {
      if (seen + batch.size() > ok_ops) break;
      flatten(batch, &expect);
      seen += batch.size();
    }
    EXPECT_EQ(got, expect);
  }
}

TEST(Wal, DroppedAppendLeavesCleanEnd) {
  // short_write = false models a crash before the record's first byte
  // lands: the segment simply ends after the previous record — kEnd (an
  // unsealed tail), not kTorn.
  TempDir dir("dropped");
  util::Rng rng(19);
  const core::Batch b1 = make_batch(rng, 4);
  const core::Batch b2 = make_batch(rng, 4);
  std::uint64_t first_bytes = 0;
  {
    TempDir probe("dropped_probe");
    WalWriter writer;
    std::string error;
    ASSERT_TRUE(writer.open(probe.path, 1, 0, {}, &error)) << error;
    ASSERT_TRUE(writer.append(b1, &error));
    first_bytes = writer.bytes_appended();
  }
  util::FaultPlan plan;
  plan.write_budget = first_bytes;
  plan.short_write = false;
  WalWriterOptions options;
  options.file_factory = util::faulty_factory(plan);
  WalWriter writer;
  std::string error;
  ASSERT_TRUE(writer.open(dir.path, 1, 0, options, &error)) << error;
  ASSERT_TRUE(writer.append(b1, &error));
  EXPECT_FALSE(writer.append(b2, &error));
  EXPECT_NE(error.find("errno"), std::string::npos) << error;  // errno context

  std::uint64_t end_lsn = 0;
  const auto state = drain(service::segment_path(dir.path, 1), nullptr, nullptr, &end_lsn);
  EXPECT_EQ(state, WalSegmentReader::Next::kEnd);
  EXPECT_EQ(end_lsn, b1.size());
}

TEST(Wal, FailedFsyncPoisonsWriterAndHoldsDurableLsn) {
  TempDir dir("fsync");
  util::FaultPlan plan;
  plan.sync_budget = 2;  // header sync + first record sync succeed
  WalWriterOptions options;
  options.file_factory = util::faulty_factory(plan);
  WalWriter writer;
  std::string error;
  ASSERT_TRUE(writer.open(dir.path, 1, 0, options, &error)) << error;
  util::Rng rng(23);
  const core::Batch batch = make_batch(rng, 3);
  ASSERT_TRUE(writer.append(batch, &error)) << error;
  EXPECT_EQ(writer.durable_lsn(), batch.size());
  // Second record's fsync fails: durable_lsn must not move, and the
  // writer must refuse everything afterwards.
  EXPECT_FALSE(writer.append(batch, &error));
  EXPECT_EQ(writer.durable_lsn(), batch.size());
  EXPECT_FALSE(writer.sync(&error));
  EXPECT_FALSE(writer.append(batch, &error));
  EXPECT_FALSE(writer.close(&error));
}

TEST(Wal, CorruptionDetectedByCrc) {
  TempDir dir("crc");
  WalWriter writer;
  std::string error;
  ASSERT_TRUE(writer.open(dir.path, 1, 0, {}, &error)) << error;
  util::Rng rng(29);
  std::uint64_t ops = 0;
  for (int b = 0; b < 6; ++b) {
    const core::Batch batch = make_batch(rng, 4);
    ops += batch.size();
    ASSERT_TRUE(writer.append(batch, &error));
  }
  ASSERT_TRUE(writer.close(&error));

  const std::string seg = service::segment_path(dir.path, 1);
  std::vector<char> bytes;
  {
    std::ifstream is(seg, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>());
  }
  // Flip one payload byte anywhere past the segment header: the reader
  // must stop at (or before) the corrupt record, never crash, and never
  // return a record containing the flipped byte as valid op data beyond
  // CRC detection. Run a spread of positions.
  for (int trial = 0; trial < 64; ++trial) {
    auto mutated = bytes;
    const std::size_t at =
        sizeof(service::WalSegmentHeader) +
        static_cast<std::size_t>(rng.next_u64() %
                                 (bytes.size() - sizeof(service::WalSegmentHeader)));
    mutated[at] = static_cast<char>(mutated[at] ^ (1 << (rng.next_u64() % 8)));
    {
      std::ofstream os(seg, std::ios::binary | std::ios::trunc);
      os.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
    }
    std::uint64_t end_lsn = 0;
    const auto state = drain(seg, nullptr, nullptr, &end_lsn);
    EXPECT_TRUE(state == WalSegmentReader::Next::kTorn ||
                state == WalSegmentReader::Next::kSealed);
    EXPECT_LE(end_lsn, ops);
    if (state == WalSegmentReader::Next::kSealed) {
      // The flip landed in dead padding ... impossible: padding is CRC'd?
      // Padding bytes are NOT covered by the CRC, so a flip there is
      // invisible — the stream must then be complete.
      EXPECT_EQ(end_lsn, ops);
    }
  }
}

TEST(Wal, TruncationNeverCrashesReader) {
  TempDir dir("trunc");
  WalWriter writer;
  std::string error;
  ASSERT_TRUE(writer.open(dir.path, 1, 0, {}, &error)) << error;
  util::Rng rng(31);
  for (int b = 0; b < 4; ++b) ASSERT_TRUE(writer.append(make_batch(rng, 3), &error));
  ASSERT_TRUE(writer.close(&error));
  const std::string seg = service::segment_path(dir.path, 1);
  std::vector<char> bytes;
  {
    std::ifstream is(seg, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>());
  }
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    {
      std::ofstream os(seg, std::ios::binary | std::ios::trunc);
      os.write(bytes.data(), static_cast<std::streamsize>(keep));
    }
    WalSegmentReader reader;
    std::string open_error;
    if (!reader.open(seg, &open_error)) {
      EXPECT_LT(keep, sizeof(service::WalSegmentHeader));
      continue;
    }
    WalRecordView view;
    WalSegmentReader::Next state;
    while ((state = reader.next(&view)) == WalSegmentReader::Next::kRecord) {
    }
    EXPECT_NE(state, WalSegmentReader::Next::kSealed)
        << "strict prefix cannot contain the seal";
  }
}

TEST(Wal, ListSegmentsSkipsAlienFiles) {
  TempDir dir("list");
  WalWriter writer;
  std::string error;
  ASSERT_TRUE(writer.open(dir.path, 3, 100, {}, &error)) << error;
  ASSERT_TRUE(writer.close(&error));
  {
    std::ofstream os(dir.path + "/wal-junk.seg", std::ios::binary);
    os << "not a segment";
  }
  {
    std::ofstream os(dir.path + "/notes.txt");
    os << "hello";
  }
  std::vector<std::string> skipped;
  const auto segments = service::list_segments(dir.path, &skipped);
  ASSERT_EQ(segments.size(), 1U);
  EXPECT_EQ(segments[0].seq, 3U);
  EXPECT_EQ(segments[0].base_lsn, 100U);
  EXPECT_EQ(skipped.size(), 1U);  // junk .seg reported, notes.txt ignored
}

TEST(Wal, RefreshFollowsLiveSegmentThroughGrowthAndSeal) {
  // Tail-follow: a reader holds a live segment open while the writer keeps
  // appending. refresh() picks up growth, is a no-op without growth, and a
  // seal, once seen, is permanent.
  TempDir dir("refresh");
  WalWriter writer;
  std::string error;
  ASSERT_TRUE(writer.open(dir.path, 1, 0, {}, &error)) << error;
  util::Rng rng(23);
  const core::Batch first = make_batch(rng, 5);
  ASSERT_TRUE(writer.append(first, &error)) << error;

  WalSegmentReader reader;
  ASSERT_TRUE(reader.open(service::segment_path(dir.path, 1), &error)) << error;
  WalRecordView view;
  std::uint64_t ops_seen = 0;
  while (reader.next(&view) == WalSegmentReader::Next::kRecord)
    ops_seen += view.ops.size();
  EXPECT_EQ(ops_seen, first.size());
  EXPECT_FALSE(reader.refresh(&error)) << "no growth yet";

  const core::Batch second = make_batch(rng, 7);
  ASSERT_TRUE(writer.append(second, &error)) << error;
  ASSERT_TRUE(reader.refresh(&error)) << error;
  while (reader.next(&view) == WalSegmentReader::Next::kRecord)
    ops_seen += view.ops.size();
  EXPECT_EQ(ops_seen, first.size() + second.size());
  EXPECT_EQ(reader.next_lsn(), ops_seen);

  ASSERT_TRUE(writer.close(&error)) << error;  // writes the seal marker
  ASSERT_TRUE(reader.refresh(&error)) << error;
  EXPECT_EQ(reader.next(&view), WalSegmentReader::Next::kSealed);
  EXPECT_FALSE(reader.refresh(&error)) << "sealed is terminal";
  EXPECT_EQ(reader.next(&view), WalSegmentReader::Next::kSealed);
}

TEST(Wal, RefreshHealsTornTailOnceBytesArrive) {
  // The log-shipping shape: the follower's copy ends mid-record (a torn
  // shipment), then the missing suffix arrives as an append. refresh()
  // must rescan from the same byte position — the acked record prefix is
  // untouched — and yield the completed record.
  TempDir full_dir("refresh_full");
  std::string error;
  std::uint64_t ops = 0;
  {
    WalWriter writer;
    ASSERT_TRUE(writer.open(full_dir.path, 1, 0, {}, &error)) << error;
    util::Rng rng(29);
    for (int b = 0; b < 6; ++b) {
      const core::Batch batch = make_batch(rng, 4 + b);
      ops += batch.size();
      ASSERT_TRUE(writer.append(batch, &error)) << error;
    }
    ASSERT_TRUE(writer.close(&error)) << error;
  }
  std::vector<char> bytes;
  {
    std::ifstream is(service::segment_path(full_dir.path, 1), std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 200U);

  for (const std::size_t cut_back : {45U, 90U, 170U}) {
    TempDir dir("refresh_torn");
    const std::string path = service::segment_path(dir.path, 1);
    const std::size_t cut = bytes.size() - cut_back;
    {
      std::ofstream os(path, std::ios::binary);
      os.write(bytes.data(), static_cast<std::streamsize>(cut));
    }
    WalSegmentReader reader;
    ASSERT_TRUE(reader.open(path, &error)) << error;
    WalRecordView view;
    std::uint64_t ops_before = 0;
    WalSegmentReader::Next state;
    while ((state = reader.next(&view)) == WalSegmentReader::Next::kRecord)
      ops_before += view.ops.size();
    ASSERT_NE(state, WalSegmentReader::Next::kSealed);
    ASSERT_LT(ops_before, ops);
    const std::uint64_t resume_lsn = reader.next_lsn();

    // The rest of the file arrives (append — the prefix is never rewritten).
    {
      std::ofstream os(path, std::ios::binary | std::ios::app);
      os.write(bytes.data() + cut, static_cast<std::streamsize>(bytes.size() - cut));
    }
    ASSERT_TRUE(reader.refresh(&error)) << error;
    std::uint64_t ops_after = ops_before;
    bool first = true;
    while ((state = reader.next(&view)) == WalSegmentReader::Next::kRecord) {
      if (first) EXPECT_EQ(view.lsn, resume_lsn) << "resumed past or before the tear";
      first = false;
      ops_after += view.ops.size();
    }
    EXPECT_EQ(state, WalSegmentReader::Next::kSealed);
    EXPECT_EQ(ops_after, ops);
  }
}

}  // namespace
