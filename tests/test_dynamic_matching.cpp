// Unit tests for DynamicMatching (dynamic MIS on the line graph).
#include <gtest/gtest.h>

#include "derived/dynamic_matching.hpp"
#include "graph/generators.hpp"
#include "graph/graph_stats.hpp"
#include "util/stats.hpp"

namespace {

using namespace dmis::derived;

TEST(DynamicMatching, SingleEdgeIsMatched) {
  DynamicMatching m(1);
  const NodeId a = m.add_node();
  const NodeId b = m.add_node();
  m.add_edge(a, b);
  EXPECT_TRUE(m.is_matched_edge(a, b));
  EXPECT_TRUE(m.is_matched_node(a));
  EXPECT_EQ(m.matching_size(), 1U);
  m.verify();
}

TEST(DynamicMatching, TriangleMatchesOneEdge) {
  DynamicMatching m(2);
  for (int i = 0; i < 3; ++i) (void)m.add_node();
  m.add_edge(0, 1);
  m.add_edge(1, 2);
  m.add_edge(2, 0);
  EXPECT_EQ(m.matching_size(), 1U);
  m.verify();
}

TEST(DynamicMatching, RemoveMatchedEdgeRepairs) {
  DynamicMatching m(3);
  for (int i = 0; i < 4; ++i) (void)m.add_node();
  for (NodeId v = 0; v + 1 < 4; ++v) m.add_edge(v, v + 1);
  m.verify();
  // Remove whichever edge is matched; maximality must be restored.
  for (const auto& [u, v] : m.matching()) {
    m.remove_edge(u, v);
    break;
  }
  m.verify();
}

TEST(DynamicMatching, RemoveNodeDecomposesIntoEdgeDeletions) {
  DynamicMatching m(4);
  for (int i = 0; i < 6; ++i) (void)m.add_node();
  m.add_edge(0, 1);
  m.add_edge(0, 2);
  m.add_edge(0, 3);
  m.add_edge(3, 4);
  m.add_edge(4, 5);
  m.remove_node(0);
  EXPECT_EQ(m.graph().node_count(), 5U);
  EXPECT_EQ(m.graph().edge_count(), 2U);
  m.verify();
}

TEST(DynamicMatching, ChurnKeepsMaximalMatching) {
  DynamicMatching m(5);
  dmis::util::Rng rng(9);
  std::vector<NodeId> live;
  for (int i = 0; i < 16; ++i) live.push_back(m.add_node());
  for (int step = 0; step < 200; ++step) {
    const double roll = rng.real01();
    if (roll < 0.45) {
      const NodeId u = live[rng.below(live.size())];
      const NodeId v = live[rng.below(live.size())];
      if (u != v && !m.graph().has_edge(u, v)) m.add_edge(u, v);
    } else if (roll < 0.8) {
      const auto edges = m.graph().edges();
      if (!edges.empty()) {
        const auto& [u, v] = edges[rng.below(edges.size())];
        m.remove_edge(u, v);
      }
    } else if (live.size() > 4 && roll < 0.9) {
      const std::size_t index = rng.below(live.size());
      m.remove_node(live[index]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(index));
    } else {
      live.push_back(m.add_node());
    }
    m.verify();
  }
}

TEST(DynamicMatching, ThreePathsExpectationIs5NOver12) {
  // §5 Example 2: on n/4 disjoint 3-edge paths the random-greedy matching
  // has expected size 5n/12 (2 edges w.p. 2/3, 1 edge w.p. 1/3 per path).
  const NodeId paths = 30;
  dmis::util::OnlineStats size;
  for (std::uint64_t seed = 0; seed < 150; ++seed) {
    DynamicMatching m(seed * 7 + 3);
    for (NodeId i = 0; i < 4 * paths; ++i) (void)m.add_node();
    for (NodeId i = 0; i < paths; ++i) {
      const NodeId base = 4 * i;
      m.add_edge(base, base + 1);
      m.add_edge(base + 1, base + 2);
      m.add_edge(base + 2, base + 3);
    }
    size.add(static_cast<double>(m.matching_size()));
  }
  const double n = 4.0 * paths;
  EXPECT_NEAR(size.mean(), 5.0 * n / 12.0, 4.0 * size.sem() + 0.5);
}

TEST(DynamicMatching, AdjustmentsStaySmallOnAverage) {
  dmis::util::OnlineStats adjustments;
  DynamicMatching m(11);
  dmis::util::Rng rng(13);
  for (int i = 0; i < 40; ++i) (void)m.add_node();
  for (int step = 0; step < 300; ++step) {
    const NodeId u = static_cast<NodeId>(rng.below(40));
    const NodeId v = static_cast<NodeId>(rng.below(40));
    if (u == v) continue;
    if (m.graph().has_edge(u, v)) m.remove_edge(u, v);
    else m.add_edge(u, v);
    adjustments.add(static_cast<double>(m.last_adjustments()));
  }
  EXPECT_LE(adjustments.mean(), 1.5);
}

}  // namespace
