// Unit tests for PriorityMap (the random permutation π).
#include <gtest/gtest.h>

#include "core/priority.hpp"

namespace {

using dmis::core::PriorityMap;
using dmis::core::priority_before;

TEST(Priority, EnsureIsStable) {
  PriorityMap pri(1);
  const auto k = pri.ensure(5);
  EXPECT_EQ(pri.ensure(5), k);
  EXPECT_EQ(pri.key(5), k);
}

TEST(Priority, SameSeedSameKeys) {
  PriorityMap a(7);
  PriorityMap b(7);
  for (dmis::core::NodeId v = 0; v < 50; ++v) EXPECT_EQ(a.ensure(v), b.ensure(v));
}

TEST(Priority, BeforeIsStrictTotalOrder) {
  PriorityMap pri(3);
  for (dmis::core::NodeId v = 0; v < 20; ++v) pri.ensure(v);
  for (dmis::core::NodeId a = 0; a < 20; ++a) {
    EXPECT_FALSE(pri.before(a, a));
    for (dmis::core::NodeId b = 0; b < 20; ++b) {
      if (a == b) continue;
      EXPECT_NE(pri.before(a, b), pri.before(b, a));
      for (dmis::core::NodeId c = 0; c < 20; ++c) {
        if (c == a || c == b) continue;
        if (pri.before(a, b) && pri.before(b, c)) {
          EXPECT_TRUE(pri.before(a, c));
        }
      }
    }
  }
}

TEST(Priority, TieBrokenById) {
  EXPECT_TRUE(priority_before(5, 1, 5, 2));
  EXPECT_FALSE(priority_before(5, 2, 5, 1));
  EXPECT_TRUE(priority_before(4, 9, 5, 1));
}

TEST(Priority, SetKeyPins) {
  PriorityMap pri(11);
  pri.set_key(3, 100);
  pri.set_key(4, 50);
  EXPECT_EQ(pri.ensure(3), 100U);  // ensure respects the pinned key
  EXPECT_TRUE(pri.before(4, 3));
}

TEST(PriorityDeath, UnassignedKeyRejected) {
  PriorityMap pri(13);
  EXPECT_DEATH((void)pri.key(9), "not assigned");
}

}  // namespace
