// Borrowed (zero-copy snapshot-backed) DynamicGraph: differential checks
// against materialized twins.
//
// The contract under test is mode transparency — a graph borrowed from a
// mapped snapshot must be observationally identical to the graph
// DynamicGraph::load materializes from the same file, under every query and
// under arbitrary further mutation (the copy-on-write overlay). The checks
// are differential: drive a borrowed graph and its materialized twin through
// the same seeded op stream and require equality throughout, then push the
// state through write-back (save of a borrowed graph streams the base table
// from the mapping and merges the overlay) and require the round-tripped
// file to load back equal. Engine-level transparency gets the same
// treatment across all four engines: borrowed-mode construction from a v2
// snapshot must track a materialized twin bit for bit (membership, MIS
// size, priority-RNG state) through churn.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/async_mis.hpp"
#include "core/batch.hpp"
#include "core/cascade_engine.hpp"
#include "core/dist_mis.hpp"
#include "core/engine_snapshot.hpp"
#include "core/sharded_engine.hpp"
#include "graph/generators.hpp"
#include "graph/snapshot.hpp"
#include "util/rng.hpp"
#include "workload/batched.hpp"
#include "workload/churn.hpp"
#include "workload/distributed.hpp"
#include "workload/trace.hpp"

namespace {

using namespace dmis;
using graph::DynamicGraph;
using graph::NodeId;
using graph::Snapshot;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / ("dmis_borrow_" + name)).string();
}

struct TempFile {
  explicit TempFile(const std::string& name) : path(temp_path(name)) {}
  ~TempFile() { std::filesystem::remove(path); }
  std::string path;
};

/// A graph with dead ids, spilled records and tombstones — the awkward
/// shapes the borrowed overlay must reproduce, not a fresh clean CSR.
DynamicGraph churned_graph(NodeId n, std::uint64_t seed) {
  util::Rng rng(seed);
  DynamicGraph g = graph::random_avg_degree(n, 8.0, rng);
  workload::ChurnConfig config;
  config.p_abrupt = 0.4;
  workload::ChurnGenerator gen(std::move(g), config, seed + 1);
  (void)gen.generate(3 * n);
  return gen.graph();
}

/// Full observational equality, both directions: counts, liveness, every
/// edge, and the per-node views (degree + neighbor multiset as a sorted
/// copy — borrowed and materialized adjacency may order neighbors
/// differently only if something is wrong; both derive from the same
/// insertion order, so exact order must match for clean AND dirty nodes).
void expect_same(const DynamicGraph& borrowed, const DynamicGraph& materialized) {
  ASSERT_EQ(borrowed.node_count(), materialized.node_count());
  ASSERT_EQ(borrowed.edge_count(), materialized.edge_count());
  ASSERT_EQ(borrowed.id_bound(), materialized.id_bound());
  ASSERT_TRUE(borrowed == materialized);
  ASSERT_TRUE(materialized == borrowed);
  for (NodeId v = 0; v < borrowed.id_bound(); ++v) {
    ASSERT_EQ(borrowed.has_node(v), materialized.has_node(v)) << "node " << v;
    if (!borrowed.has_node(v)) continue;
    ASSERT_EQ(borrowed.degree(v), materialized.degree(v)) << "node " << v;
    const auto bn = borrowed.neighbors(v);
    const auto mn = materialized.neighbors(v);
    ASSERT_EQ(bn.size(), mn.size()) << "node " << v;
    for (std::size_t i = 0; i < bn.size(); ++i)
      ASSERT_EQ(bn[i], mn[i]) << "node " << v << " slot " << i;
  }
}

TEST(BorrowedGraph, BorrowEqualsLoadOnOpen) {
  const DynamicGraph original = churned_graph(300, 17);
  TempFile file("open.snap");
  ASSERT_TRUE(original.save(file.path));

  auto snap = std::make_shared<Snapshot>();
  std::string error;
  ASSERT_TRUE(snap->open(file.path, &error)) << error;
  const DynamicGraph borrowed = DynamicGraph::borrow(snap);
  const DynamicGraph materialized = DynamicGraph::load(*snap);

  EXPECT_TRUE(borrowed.borrowed());
  EXPECT_FALSE(materialized.borrowed());
  EXPECT_EQ(borrowed.overlay_nodes(), 0U);  // untouched: everything clean
  expect_same(borrowed, materialized);
  EXPECT_TRUE(borrowed == original);
}

TEST(BorrowedGraph, ShallowOpenBorrowEqualsFullOpenBorrow) {
  // kShallow skips the linear validation pass; on a well-formed file the
  // borrowed view must nonetheless be identical to one over a fully
  // validated open (the lazy guards pass silently on clean records).
  const DynamicGraph original = churned_graph(200, 23);
  TempFile file("shallow.snap");
  ASSERT_TRUE(original.save(file.path));

  auto full = std::make_shared<Snapshot>();
  auto shallow = std::make_shared<Snapshot>();
  std::string error;
  ASSERT_TRUE(full->open(file.path, &error)) << error;
  ASSERT_TRUE(shallow->open(file.path, &error, /*force_read=*/false,
                            graph::SnapshotValidation::kShallow))
      << error;
  EXPECT_TRUE(full->deep_validated());
  EXPECT_FALSE(shallow->deep_validated());

  const DynamicGraph a = DynamicGraph::borrow(full);
  const DynamicGraph b = DynamicGraph::borrow(shallow);
  expect_same(b, DynamicGraph::load(*full));
  ASSERT_TRUE(a == b);
}

/// The differential churn fuzz: one seeded op stream, applied in lockstep
/// to the borrowed graph and its materialized twin. Ops are chosen from the
/// twins' (identical) current state, so divergence surfaces as a direct
/// mismatch at the op that caused it.
void fuzz_pair(DynamicGraph& borrowed, DynamicGraph& materialized,
               std::uint64_t seed, int ops) {
  util::Rng rng(seed);
  util::Rng sample_rng_b(seed + 1);  // separate streams: borrowed sampling
  util::Rng sample_rng_m(seed + 2);  // consumes different draw counts
  for (int i = 0; i < ops; ++i) {
    const std::uint64_t what = rng.next_u64() % 100;
    const NodeId bound = borrowed.id_bound();
    if (what < 55 && bound >= 2) {
      // Edge toggle (the overlay's bread and butter: COW the touched
      // records, route the key through the add/remove deltas).
      const auto u = static_cast<NodeId>(rng.below(bound));
      const auto v = static_cast<NodeId>(rng.below(bound));
      if (u == v || !borrowed.has_node(u) || !borrowed.has_node(v)) continue;
      const bool had = borrowed.has_edge(u, v);
      ASSERT_EQ(had, materialized.has_edge(u, v)) << "(" << u << "," << v << ")";
      if (had) {
        ASSERT_TRUE(borrowed.remove_edge(u, v));
        ASSERT_TRUE(materialized.remove_edge(u, v));
      } else {
        ASSERT_TRUE(borrowed.add_edge(u, v));
        ASSERT_TRUE(materialized.add_edge(u, v));
      }
    } else if (what < 65) {
      // Node insertion appends past the snapshot's id_bound — borrowed mode
      // must route the fresh record through the overlay index.
      ASSERT_EQ(borrowed.add_node(), materialized.add_node());
    } else if (what < 72 && bound > 0) {
      // Node removal: COWs the victim's neighbors too (their lists shrink).
      const auto start = static_cast<NodeId>(rng.below(bound));
      NodeId victim = graph::kInvalidNode;
      for (NodeId d = 0; d < bound; ++d) {
        const NodeId v = static_cast<NodeId>((start + d) % bound);
        if (borrowed.has_node(v)) { victim = v; break; }
      }
      if (victim == graph::kInvalidNode) continue;
      borrowed.remove_node(victim);
      materialized.remove_node(victim);
    } else if (what < 85 && bound >= 1) {
      // Query probe: neighbors + has_edge agreement on a random live node.
      const auto v = static_cast<NodeId>(rng.below(bound));
      if (!borrowed.has_node(v)) continue;
      ASSERT_EQ(borrowed.degree(v), materialized.degree(v));
      for (const NodeId u : borrowed.neighbors(v)) {
        ASSERT_TRUE(materialized.has_edge(u, v));
        ASSERT_TRUE(borrowed.has_edge(u, v));
      }
    } else {
      // sample_edge draws differently per mode (different slot spaces), so
      // require validity, not equality: each sampled edge must be present
      // in BOTH graphs.
      NodeId u = 0, v = 0;
      const bool bs = borrowed.sample_edge(sample_rng_b, u, v);
      ASSERT_EQ(bs, borrowed.edge_count() > 0);
      if (bs) {
        EXPECT_TRUE(borrowed.has_edge(u, v));
        EXPECT_TRUE(materialized.has_edge(u, v));
      }
      const bool ms = materialized.sample_edge(sample_rng_m, u, v);
      ASSERT_EQ(ms, bs);
      if (ms) {
        EXPECT_TRUE(borrowed.has_edge(u, v));
      }
    }
    if (i % 50 == 0) expect_same(borrowed, materialized);
  }
  expect_same(borrowed, materialized);
}

TEST(BorrowedGraph, DifferentialChurnMatchesMaterializedTwin) {
  for (const std::uint64_t seed : {3ULL, 29ULL, 71ULL}) {
    const DynamicGraph original = churned_graph(250, seed);
    TempFile file("fuzz.snap");
    ASSERT_TRUE(original.save(file.path));
    auto snap = std::make_shared<Snapshot>();
    std::string error;
    ASSERT_TRUE(snap->open(file.path, &error)) << error;
    DynamicGraph borrowed = DynamicGraph::borrow(snap);
    DynamicGraph materialized = DynamicGraph::load(*snap);
    fuzz_pair(borrowed, materialized, seed * 13 + 5, 2000);
    EXPECT_GT(borrowed.overlay_nodes(), 0U);  // the fuzz must have dirtied some
  }
}

TEST(BorrowedGraph, SpillBoundaryCrossingUnderCow) {
  // Push one clean base node's degree across the inline-record capacity:
  // the COW copy must spill to an overflow list exactly like a materialized
  // record, then drain back below the boundary without corruption.
  DynamicGraph original(40);
  for (NodeId v = 1; v <= 6; ++v) ASSERT_TRUE(original.add_edge(0, v));
  TempFile file("spill.snap");
  ASSERT_TRUE(original.save(file.path));
  auto snap = std::make_shared<Snapshot>();
  std::string error;
  ASSERT_TRUE(snap->open(file.path, &error)) << error;
  DynamicGraph borrowed = DynamicGraph::borrow(snap);
  DynamicGraph materialized = DynamicGraph::load(*snap);

  // 6 base neighbors + 24 more crosses any plausible inline capacity.
  for (NodeId v = 7; v <= 30; ++v) {
    ASSERT_TRUE(borrowed.add_edge(0, v));
    ASSERT_TRUE(materialized.add_edge(0, v));
    expect_same(borrowed, materialized);
  }
  for (NodeId v = 1; v <= 30; ++v) {
    ASSERT_TRUE(borrowed.remove_edge(0, v));
    ASSERT_TRUE(materialized.remove_edge(0, v));
  }
  expect_same(borrowed, materialized);
  EXPECT_EQ(borrowed.degree(0), 0U);
}

TEST(BorrowedGraph, WriteBackRoundTripsThroughMergedEdgeSet) {
  // Checkpointing a borrowed graph goes through merged_edge_set (base table
  // restored from the mapping, overlay merged on top). The resulting file
  // must load back semantically equal to the churned state — the twin saved
  // from materialized mode pins the expectation.
  const DynamicGraph original = churned_graph(220, 41);
  TempFile base("wb_base.snap");
  ASSERT_TRUE(original.save(base.path));
  auto snap = std::make_shared<Snapshot>();
  std::string error;
  ASSERT_TRUE(snap->open(base.path, &error)) << error;
  DynamicGraph borrowed = DynamicGraph::borrow(snap);
  DynamicGraph materialized = DynamicGraph::load(*snap);
  fuzz_pair(borrowed, materialized, 57, 1500);

  TempFile from_borrowed("wb_b.snap");
  TempFile from_materialized("wb_m.snap");
  ASSERT_TRUE(borrowed.save(from_borrowed.path));
  ASSERT_TRUE(materialized.save(from_materialized.path));

  Snapshot sb, sm;
  ASSERT_TRUE(sb.open(from_borrowed.path, &error)) << error;
  ASSERT_TRUE(sm.open(from_materialized.path, &error)) << error;
  EXPECT_TRUE(sb.verify(&error)) << error;  // checksum + undirectedness
  const DynamicGraph lb = DynamicGraph::load(sb);
  const DynamicGraph lm = DynamicGraph::load(sm);
  expect_same(lb, lm);  // both materialized now; full structural agreement
  EXPECT_TRUE(lb == borrowed);
  EXPECT_TRUE(lb == materialized);
}

// ---- engine-level transparency: all four engines ----

/// Drive the borrowed-constructed engine set and the materialized twins
/// through the same churn trace; memberships must agree after every op and
/// the cascade pair must also agree on the priority-RNG stream (so future
/// draws stay aligned forever).
TEST(BorrowedEngines, AllFourEnginesTrackMaterializedTwins) {
  const std::uint64_t seed = 31;
  const DynamicGraph g0 = churned_graph(150, seed);
  core::CascadeEngine source(g0, /*priority_seed=*/seed * 3 + 1);
  TempFile file("engines.snap");
  ASSERT_TRUE(core::save_snapshot(source, file.path));

  auto snap = std::make_shared<Snapshot>();
  std::string error;
  ASSERT_TRUE(snap->open(file.path, &error)) << error;
  ASSERT_TRUE(snap->has_engine_state());

  // Borrowed set (shared_ptr ctors: graphs read the mapping in place).
  core::CascadeEngine cascade_b(snap, seed * 3 + 1);
  core::ShardedCascadeEngine sharded_b(snap, seed * 3 + 1, /*shard_count=*/4,
                                       /*frontier_capacity=*/64);
  core::DistMis dist_b(snap, seed * 3 + 1);
  core::AsyncMis async_b(snap, seed * 3 + 1, /*scheduler_seed=*/seed + 5);
  EXPECT_TRUE(cascade_b.graph().borrowed());

  // Materialized twins from the same file.
  core::CascadeEngine cascade_m(*snap, seed * 3 + 1);
  core::ShardedCascadeEngine sharded_m(*snap, seed * 3 + 1, 4, 64);
  core::DistMis dist_m(*snap, seed * 3 + 1);
  core::AsyncMis async_m(*snap, seed * 3 + 1, seed + 5);
  EXPECT_FALSE(cascade_m.graph().borrowed());

  workload::ChurnConfig config;
  config.p_abrupt = 0.5;
  workload::ChurnGenerator gen(g0, config, seed + 99);
  core::Batch batch;
  for (int i = 0; i < 400; ++i) {
    const workload::GraphOp op = gen.next();
    workload::apply(cascade_b, op);
    workload::apply(cascade_m, op);
    batch.clear();
    workload::append_op(batch, op);
    (void)sharded_b.apply_batch(batch);
    (void)sharded_m.apply_batch(batch);
    (void)workload::apply_with_cost(dist_b, op);
    (void)workload::apply_with_cost(dist_m, op);
    (void)workload::apply_with_cost(async_b, op);
    (void)workload::apply_with_cost(async_m, op);

    ASSERT_EQ(cascade_b.mis_size(), cascade_m.mis_size()) << "op " << i;
    bool agree = true;
    cascade_m.graph().for_each_node([&](NodeId v) {
      agree &= cascade_b.in_mis(v) == cascade_m.in_mis(v) &&
               sharded_b.in_mis(v) == sharded_m.in_mis(v) &&
               dist_b.in_mis(v) == dist_m.in_mis(v) &&
               async_b.in_mis(v) == async_m.in_mis(v);
    });
    ASSERT_TRUE(agree) << "borrowed/materialized membership divergence at op " << i;
  }

  ASSERT_TRUE(cascade_b.graph() == cascade_m.graph());
  ASSERT_TRUE(dist_b.graph() == dist_m.graph());
  ASSERT_TRUE(async_b.graph() == async_m.graph());
  EXPECT_EQ(cascade_b.membership(), cascade_m.membership());
  EXPECT_TRUE(cascade_b.priorities().rng_state() == cascade_m.priorities().rng_state());
  cascade_b.verify();
  sharded_b.verify();
  dist_b.verify();
  async_b.verify();
}

TEST(BorrowedEngines, CheckpointOfBorrowedEngineWarmStartsEqual) {
  // Full circle: borrow-start an engine, churn it, checkpoint it (the
  // writer streams clean regions from the mapping), then warm-start a new
  // engine from that checkpoint and require equality with the live one.
  const std::uint64_t seed = 47;
  const DynamicGraph g0 = churned_graph(120, seed);
  core::CascadeEngine source(g0, seed);
  TempFile first("ckpt1.snap");
  ASSERT_TRUE(core::save_snapshot(source, first.path));

  auto snap = std::make_shared<Snapshot>();
  std::string error;
  ASSERT_TRUE(snap->open(first.path, &error)) << error;
  core::CascadeEngine live(snap, seed);
  util::Rng rng(seed + 7);
  for (int i = 0; i < 500; ++i) {
    const auto u = static_cast<NodeId>(rng.below(live.graph().id_bound()));
    const auto v = static_cast<NodeId>(rng.below(live.graph().id_bound()));
    if (u == v || !live.graph().has_node(u) || !live.graph().has_node(v)) continue;
    if (live.graph().has_edge(u, v)) live.remove_edge(u, v);
    else live.add_edge(u, v);
  }

  TempFile second("ckpt2.snap");
  ASSERT_TRUE(core::save_snapshot(live, second.path));
  Snapshot reopened;
  ASSERT_TRUE(reopened.open(second.path, &error)) << error;
  EXPECT_TRUE(reopened.verify(&error)) << error;  // incl. greedy fixpoint
  const core::CascadeEngine warm(reopened, seed, graph::SnapshotLoad::kWarm);
  ASSERT_TRUE(warm.graph() == live.graph());
  EXPECT_EQ(warm.membership(), live.membership());
  EXPECT_TRUE(warm.priorities().rng_state() == live.priorities().rng_state());
  warm.verify();
}

}  // namespace
