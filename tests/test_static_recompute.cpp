// Unit tests for the static-recompute (Luby-from-scratch) baseline driver.
#include <gtest/gtest.h>

#include "baselines/static_recompute.hpp"
#include "graph/generators.hpp"
#include "graph/graph_stats.hpp"

namespace {

using namespace dmis::baselines;
using dmis::workload::GraphOp;

dmis::graph::NodeSet current_set(const StaticRecomputeMis& mis) {
  dmis::graph::NodeSet out;
  mis.graph().for_each_node([&](NodeId v) {
    if (mis.in_mis(v)) out.push_back_ascending(v);
  });
  return out;
}

TEST(StaticRecompute, MaintainsValidMisUnderChurn) {
  dmis::util::Rng rng(1);
  const auto g = dmis::graph::erdos_renyi(30, 0.1, rng);
  StaticRecomputeMis mis(g, 7);
  EXPECT_TRUE(dmis::graph::is_maximal_independent_set(mis.graph(), current_set(mis)));

  for (int step = 0; step < 30; ++step) {
    const NodeId u = static_cast<NodeId>(rng.below(mis.graph().id_bound()));
    const NodeId v = static_cast<NodeId>(rng.below(mis.graph().id_bound()));
    if (u == v || !mis.graph().has_node(u) || !mis.graph().has_node(v)) continue;
    const auto op = mis.graph().has_edge(u, v) ? GraphOp::remove_edge(u, v)
                                               : GraphOp::add_edge(u, v);
    const auto cost = mis.apply(op);
    EXPECT_GT(cost.rounds, 0U);
    EXPECT_TRUE(
        dmis::graph::is_maximal_independent_set(mis.graph(), current_set(mis)));
  }
}

TEST(StaticRecompute, NodeOpsApplied) {
  StaticRecomputeMis mis(dmis::graph::DynamicGraph(4), 3);
  (void)mis.apply(GraphOp::add_node({0, 1}));
  EXPECT_EQ(mis.graph().node_count(), 5U);
  EXPECT_TRUE(mis.graph().has_edge(4, 0));
  (void)mis.apply(GraphOp::remove_node(2));
  EXPECT_FALSE(mis.graph().has_node(2));
  EXPECT_TRUE(
      dmis::graph::is_maximal_independent_set(mis.graph(), current_set(mis)));
}

TEST(StaticRecompute, PaysFullRecomputeCost) {
  dmis::util::Rng rng(5);
  const auto g = dmis::graph::random_avg_degree(150, 6.0, rng);
  StaticRecomputeMis mis(g, 9);
  const auto cost = mis.apply(GraphOp::add_edge(0, 1));
  // The whole graph participates again: broadcasts scale with n.
  EXPECT_GE(cost.broadcasts, 150U);
}

TEST(StaticRecompute, AdjustmentsTypicallyLarge) {
  // Fresh randomness per run means many nodes change output even for a
  // trivial change — the instability the dynamic algorithm eliminates.
  dmis::util::Rng rng(7);
  const auto g = dmis::graph::random_avg_degree(120, 6.0, rng);
  StaticRecomputeMis mis(g, 11);
  std::uint64_t total = 0;
  int steps = 0;
  for (NodeId v = 0; v + 1 < 120; v += 10) {
    const auto op = mis.graph().has_edge(v, v + 1)
                        ? GraphOp::remove_edge(v, v + 1)
                        : GraphOp::add_edge(v, v + 1);
    total += mis.apply(op).adjustments;
    ++steps;
  }
  EXPECT_GT(total / static_cast<std::uint64_t>(steps), 10U);
}

}  // namespace
