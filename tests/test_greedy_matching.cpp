// Unit tests for GreedyMatchingEngine, including output equality with the
// line-graph route (both simulate random greedy on L(G); with identical
// priority draws they must produce the identical matching).
#include <gtest/gtest.h>

#include "derived/dynamic_matching.hpp"
#include "derived/greedy_matching.hpp"
#include "graph/graph_stats.hpp"
#include "util/rng.hpp"

namespace {

using namespace dmis::derived;

TEST(GreedyMatching, SingleEdgeMatches) {
  GreedyMatchingEngine m(1);
  const NodeId a = m.add_node();
  const NodeId b = m.add_node();
  m.add_edge(a, b);
  EXPECT_TRUE(m.is_matched_edge(a, b));
  EXPECT_EQ(m.last_report().adjustments, 1U);
  m.verify();
}

TEST(GreedyMatching, PathAlternates) {
  GreedyMatchingEngine m(2);
  for (int i = 0; i < 5; ++i) (void)m.add_node();
  for (NodeId v = 0; v + 1 < 5; ++v) m.add_edge(v, v + 1);
  m.verify();
  EXPECT_GE(m.matching_size(), 1U);
  EXPECT_LE(m.matching_size(), 2U);
}

TEST(GreedyMatching, RemoveMatchedEdgeRepairs) {
  GreedyMatchingEngine m(3);
  for (int i = 0; i < 6; ++i) (void)m.add_node();
  for (NodeId v = 0; v + 1 < 6; ++v) m.add_edge(v, v + 1);
  const auto matched = m.matching();
  ASSERT_FALSE(matched.empty());
  m.remove_edge(matched.front().first, matched.front().second);
  m.verify();
}

TEST(GreedyMatching, RemoveNodeDropsIncidentEdges) {
  GreedyMatchingEngine m(4);
  for (int i = 0; i < 5; ++i) (void)m.add_node();
  m.add_edge(0, 1);
  m.add_edge(0, 2);
  m.add_edge(0, 3);
  m.add_edge(3, 4);
  m.remove_node(0);
  m.verify();
  EXPECT_EQ(m.graph().edge_count(), 1U);
  EXPECT_TRUE(m.is_matched_edge(3, 4));
}

TEST(GreedyMatching, EqualsLineGraphRouteUnderChurn) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    GreedyMatchingEngine direct(seed);
    DynamicMatching via_line(seed);
    dmis::util::Rng rng(seed + 100);
    std::vector<NodeId> live;
    for (int i = 0; i < 14; ++i) {
      live.push_back(direct.add_node());
      (void)via_line.add_node();
    }
    for (int step = 0; step < 150; ++step) {
      const double roll = rng.real01();
      if (roll < 0.5) {
        const auto u = live[rng.below(live.size())];
        const auto v = live[rng.below(live.size())];
        if (u == v || direct.graph().has_edge(u, v)) continue;
        direct.add_edge(u, v);
        via_line.add_edge(u, v);
      } else if (roll < 0.85) {
        const auto edges = direct.graph().edges();
        if (edges.empty()) continue;
        const auto& [u, v] = edges[rng.below(edges.size())];
        direct.remove_edge(u, v);
        via_line.remove_edge(u, v);
      } else {
        continue;  // node removal orders differ between the two routes
      }
      ASSERT_TRUE(direct.graph() == via_line.graph());
      for (const auto& [u, v] : direct.graph().edges())
        ASSERT_EQ(direct.is_matched_edge(u, v), via_line.is_matched_edge(u, v))
            << "seed " << seed << " step " << step;
    }
    direct.verify();
    via_line.verify();
  }
}

TEST(GreedyMatching, MaximalUnderHeavyChurn) {
  GreedyMatchingEngine m(9);
  dmis::util::Rng rng(11);
  std::vector<NodeId> live;
  for (int i = 0; i < 18; ++i) live.push_back(m.add_node());
  for (int step = 0; step < 300; ++step) {
    const double roll = rng.real01();
    if (roll < 0.45) {
      const auto u = live[rng.below(live.size())];
      const auto v = live[rng.below(live.size())];
      if (u != v && !m.graph().has_edge(u, v)) m.add_edge(u, v);
    } else if (roll < 0.8) {
      const auto edges = m.graph().edges();
      if (!edges.empty()) {
        const auto& [u, v] = edges[rng.below(edges.size())];
        m.remove_edge(u, v);
      }
    } else if (roll < 0.9 && live.size() > 5) {
      const std::size_t index = rng.below(live.size());
      m.remove_node(live[index]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(index));
    } else {
      live.push_back(m.add_node());
    }
    m.verify();
  }
}

TEST(GreedyMatching, AdjustmentsMatchLineGraphRoute) {
  GreedyMatchingEngine direct(21);
  DynamicMatching via_line(21);
  dmis::util::Rng rng(23);
  for (int i = 0; i < 20; ++i) {
    (void)direct.add_node();
    (void)via_line.add_node();
  }
  for (int step = 0; step < 150; ++step) {
    const auto u = static_cast<NodeId>(rng.below(20));
    const auto v = static_cast<NodeId>(rng.below(20));
    if (u == v) continue;
    if (direct.graph().has_edge(u, v)) {
      direct.remove_edge(u, v);
      via_line.remove_edge(u, v);
    } else {
      direct.add_edge(u, v);
      via_line.add_edge(u, v);
    }
    EXPECT_EQ(direct.last_report().adjustments, via_line.last_adjustments());
  }
}

}  // namespace
