// Unit tests for the DynamicMIS public facade.
#include <gtest/gtest.h>

#include <utility>

#include "core/dynamic_mis.hpp"
#include "graph/generators.hpp"
#include "graph/graph_stats.hpp"

namespace {

using namespace dmis::core;

TEST(DynamicMIS, QuickstartFlow) {
  DynamicMIS mis(42);
  const NodeId a = mis.add_node();
  const NodeId b = mis.add_node();
  EXPECT_TRUE(mis.in_mis(a));
  EXPECT_TRUE(mis.in_mis(b));
  mis.add_edge(a, b);
  EXPECT_NE(mis.in_mis(a), mis.in_mis(b));
  EXPECT_EQ(mis.mis_size(), 1U);
  mis.remove_edge(a, b);
  EXPECT_TRUE(mis.in_mis(a));
  EXPECT_TRUE(mis.in_mis(b));
  mis.verify();
}

TEST(DynamicMIS, ConstructFromGraph) {
  dmis::util::Rng rng(1);
  const auto g = dmis::graph::erdos_renyi(60, 0.08, rng);
  DynamicMIS mis(g, 9);
  EXPECT_TRUE(dmis::graph::is_maximal_independent_set(g, mis.mis_set()));
  EXPECT_EQ(mis.update_count(), 0U);
}

TEST(DynamicMIS, LifetimeCountersAccumulate) {
  DynamicMIS mis(3);
  const NodeId a = mis.add_node();
  const NodeId b = mis.add_node();
  mis.add_edge(a, b);
  EXPECT_EQ(mis.update_count(), 3U);
  // Two isolated joins (+1 each) and one demotion (+1).
  EXPECT_EQ(mis.lifetime_adjustments(), 3U);
  EXPECT_EQ(mis.last_report().adjustments, 1U);
}

TEST(DynamicMIS, RemoveNodeKeepsMaximality) {
  dmis::util::Rng rng(5);
  const auto g = dmis::graph::erdos_renyi(40, 0.15, rng);
  DynamicMIS mis(g, 77);
  auto nodes = mis.graph().nodes();
  for (std::size_t i = 0; i < 20; ++i) {
    mis.remove_node(nodes[i]);
    mis.verify();
    EXPECT_TRUE(
        dmis::graph::is_maximal_independent_set(mis.graph(), mis.mis_set()));
  }
}

TEST(DynamicMIS, SameSeedReproducible) {
  auto run = [] {
    DynamicMIS mis(123);
    std::vector<NodeId> ids;
    for (int i = 0; i < 20; ++i)
      ids.push_back(mis.add_node(i > 0 ? std::vector<NodeId>{ids.back()}
                                       : std::vector<NodeId>{}));
    std::vector<bool> membership;
    for (const NodeId v : ids) membership.push_back(mis.in_mis(v));
    return membership;
  };
  EXPECT_EQ(run(), run());
}

TEST(DynamicMIS, EngineAccessorExposesInternals) {
  DynamicMIS mis(7);
  const NodeId a = mis.add_node();
  EXPECT_TRUE(mis.engine().in_mis(a));
  EXPECT_EQ(&std::as_const(mis).engine(), &mis.engine());
}

}  // namespace
