// Tests for CascadeEngine's reused-scratch machinery: the epoch-stamped
// visited table (including counter rollover), the incremental mis_size()
// counter, and interleaved raw_*/repair batch sequences.
#include <gtest/gtest.h>

#include "core/batch.hpp"
#include "core/cascade_engine.hpp"
#include "core/greedy_mis.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace {

using namespace dmis::core;

void expect_matches_oracle(const CascadeEngine& engine, std::uint64_t seed) {
  PriorityMap oracle_pri(seed);
  // Replay the engine's (possibly pinned) keys so the oracle uses the same π.
  for (NodeId v = 0; v < engine.graph().id_bound(); ++v)
    if (engine.priorities().is_assigned(v))
      oracle_pri.set_key(v, engine.priorities().key(v));
  PriorityMap& pri = oracle_pri;
  const auto oracle = greedy_mis(engine.graph(), pri);
  engine.graph().for_each_node(
      [&](NodeId v) { EXPECT_EQ(engine.in_mis(v), oracle[v] != 0) << "node " << v; });
}

TEST(CascadeScratch, EpochAdvancesPerCascade) {
  CascadeEngine engine(3);
  const std::uint32_t start = engine.debug_epoch();
  const NodeId a = engine.add_node();
  const NodeId b = engine.add_node();
  EXPECT_GT(engine.debug_epoch(), start);  // each add_node runs a cascade
  const std::uint32_t before = engine.debug_epoch();
  engine.add_edge(a, b);  // may or may not cascade, but never reuses a stamp
  EXPECT_GE(engine.debug_epoch(), before);
}

TEST(CascadeScratch, EpochRolloverIsSafe) {
  dmis::util::Rng rng(31);
  const auto g = dmis::graph::erdos_renyi(60, 0.08, rng);
  CascadeEngine engine(g, 17);

  // Park the counter right below 2^32 − 1 so the next few cascades cross
  // the rollover boundary.
  engine.debug_set_epoch(~static_cast<std::uint32_t>(0) - 3);
  std::vector<NodeId> live = engine.graph().nodes();
  int updates = 0;
  for (int step = 0; step < 200; ++step) {
    const NodeId u = live[rng.below(live.size())];
    const NodeId v = live[rng.below(live.size())];
    if (u == v) continue;
    if (engine.graph().has_edge(u, v)) engine.remove_edge(u, v);
    else engine.add_edge(u, v);
    ++updates;
    engine.verify();
  }
  ASSERT_GT(updates, 50);
  EXPECT_LT(engine.debug_epoch(), 200U) << "counter must restart after rollover";
  expect_matches_oracle(engine, 17);
}

TEST(CascadeScratch, MisSizeCounterTracksSetExactly) {
  CascadeEngine engine(7);
  dmis::util::Rng rng(5);
  std::vector<NodeId> live;
  for (int i = 0; i < 50; ++i) live.push_back(engine.add_node());
  for (int step = 0; step < 2'000; ++step) {
    const double roll = rng.real01();
    if (roll < 0.45) {
      const NodeId u = live[rng.below(live.size())];
      const NodeId v = live[rng.below(live.size())];
      if (u == v || engine.graph().has_edge(u, v)) continue;
      engine.add_edge(u, v);
    } else if (roll < 0.9) {
      const auto edges = engine.graph().edges();
      if (edges.empty()) continue;
      const auto& [u, v] = edges[rng.below(edges.size())];
      engine.remove_edge(u, v);
    } else if (roll < 0.95) {
      live.push_back(engine.add_node({live[rng.below(live.size())]}));
    } else if (live.size() > 2) {
      const std::size_t idx = rng.below(live.size());
      engine.remove_node(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    ASSERT_EQ(engine.mis_size(), engine.mis_set().size());
  }
  engine.verify();
}

TEST(CascadeScratch, InterleavedRawAndRepairSequences) {
  dmis::util::Rng rng(13);
  CascadeEngine engine(dmis::graph::erdos_renyi(40, 0.1, rng), 23);

  // Alternate raw mutations + manual repair with normal single-change
  // updates and apply_batch calls; after every repair the structure must
  // equal the from-scratch greedy MIS (history independence).
  std::vector<NodeId> live = engine.graph().nodes();
  for (int round = 0; round < 60; ++round) {
    const int mode = round % 3;
    if (mode == 0) {
      // Raw phase: a handful of unrepaired mutations, then one repair.
      std::vector<NodeId> seeds;
      for (int k = 0; k < 4; ++k) {
        const NodeId u = live[rng.below(live.size())];
        const NodeId v = live[rng.below(live.size())];
        if (u == v) continue;
        if (engine.graph().has_edge(u, v)) engine.raw_remove_edge(u, v);
        else engine.raw_add_edge(u, v);
        seeds.push_back(engine.priorities().before(u, v) ? v : u);
      }
      engine.repair(seeds);
    } else if (mode == 1) {
      // Batch phase.
      Batch ops;
      for (int k = 0; k < 3; ++k) {
        const NodeId u = live[rng.below(live.size())];
        const NodeId v = live[rng.below(live.size())];
        if (u == v) continue;
        if (engine.graph().has_edge(u, v)) ops.remove_edge(u, v);
        else ops.add_edge(u, v);
      }
      ops.add_node({live[rng.below(live.size())]});
      const BatchResult res = apply_batch(engine, ops);
      for (const NodeId fresh : res.new_nodes) live.push_back(fresh);
    } else {
      // Normal single-change phase.
      const NodeId u = live[rng.below(live.size())];
      const NodeId v = live[rng.below(live.size())];
      if (u != v) {
        if (engine.graph().has_edge(u, v)) engine.remove_edge(u, v);
        else engine.add_edge(u, v);
      }
    }
    engine.verify();
    expect_matches_oracle(engine, 23);
    ASSERT_EQ(engine.mis_size(), engine.mis_set().size());
  }
}

TEST(CascadeScratch, RepairSeedsBufferIsCallerOwned) {
  // repair() copies the caller's seeds; mutating or reusing the caller's
  // vector afterwards must not affect the engine.
  CascadeEngine engine(1);
  const NodeId a = engine.add_node();
  const NodeId b = engine.add_node({a});
  std::vector<NodeId> seeds = {a, b};
  engine.repair(seeds);
  seeds.clear();
  seeds.push_back(a);
  engine.repair(seeds);
  engine.verify();
}

}  // namespace
