// Unit tests for the random-greedy oracle and the MIS invariant checker.
#include <gtest/gtest.h>

#include "core/greedy_mis.hpp"
#include "core/invariant.hpp"
#include "graph/generators.hpp"
#include "graph/graph_stats.hpp"

namespace {

using namespace dmis::core;
using dmis::graph::DynamicGraph;

TEST(GreedyMis, PinnedOrderOnPath) {
  // Path 0-1-2-3 with π = id: greedy picks 0 and 2.
  const auto g = dmis::graph::path(4);
  PriorityMap pri(0);
  for (NodeId v = 0; v < 4; ++v) pri.set_key(v, v);
  const auto mis = greedy_mis(g, pri);
  EXPECT_TRUE(mis[0]);
  EXPECT_FALSE(mis[1]);
  EXPECT_TRUE(mis[2]);
  EXPECT_FALSE(mis[3]);
}

TEST(GreedyMis, CenterFirstStar) {
  const auto g = dmis::graph::star(6);
  PriorityMap pri(0);
  for (NodeId v = 0; v < 6; ++v) pri.set_key(v, v);  // center lowest
  const auto mis = greedy_mis_set(g, pri);
  EXPECT_EQ(mis, (dmis::graph::NodeSet{0}));
}

TEST(GreedyMis, LeafFirstStar) {
  const auto g = dmis::graph::star(6);
  PriorityMap pri(0);
  pri.set_key(0, 100);  // center last
  for (NodeId v = 1; v < 6; ++v) pri.set_key(v, v);
  const auto mis = greedy_mis_set(g, pri);
  EXPECT_EQ(mis, (dmis::graph::NodeSet{1, 2, 3, 4, 5}));
}

TEST(GreedyMis, AlwaysMaximalIndependent) {
  dmis::util::Rng rng(17);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto g = dmis::graph::erdos_renyi(60, 0.08, rng);
    PriorityMap pri(seed);
    const auto set = greedy_mis_set(g, pri);
    EXPECT_TRUE(dmis::graph::is_maximal_independent_set(g, set));
  }
}

TEST(GreedyMis, SatisfiesInvariant) {
  dmis::util::Rng rng(19);
  const auto g = dmis::graph::erdos_renyi(80, 0.05, rng);
  PriorityMap pri(23);
  const auto mis = greedy_mis(g, pri);
  EXPECT_TRUE(invariant_holds(g, pri, mis, nullptr));
}

TEST(GreedyMis, SkipsDeadNodes) {
  DynamicGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.remove_node(0);
  PriorityMap pri(29);
  const auto mis = greedy_mis(g, pri);
  EXPECT_FALSE(mis[0]);
  EXPECT_TRUE(dmis::graph::is_maximal_independent_set(g, greedy_mis_set(g, pri)));
}

TEST(Invariant, DetectsViolations) {
  const auto g = dmis::graph::path(3);
  PriorityMap pri(0);
  for (NodeId v = 0; v < 3; ++v) pri.set_key(v, v);
  // Correct: {0, 2}.
  EXPECT_TRUE(invariant_holds(g, pri, {true, false, true}, nullptr));
  // Node 1 in M next to lower node 0 in M.
  NodeId violator = 99;
  EXPECT_FALSE(invariant_holds(g, pri, {true, true, false}, &violator));
  EXPECT_EQ(violator, 1U);
  // Node 2 missing from M although its lower neighbor is out.
  EXPECT_FALSE(invariant_holds(g, pri, {true, false, false}, &violator));
  EXPECT_EQ(violator, 2U);
  // Empty set: node 0 should be in M.
  EXPECT_FALSE(invariant_holds(g, pri, {false, false, false}, &violator));
  EXPECT_EQ(violator, 0U);
}

TEST(Invariant, ReportsPiSmallestViolator) {
  const auto g = dmis::graph::path(5);
  PriorityMap pri(0);
  for (NodeId v = 0; v < 5; ++v) pri.set_key(v, v);
  // All-out configuration: every even node violates; 0 is π-smallest.
  NodeId violator = 99;
  EXPECT_FALSE(invariant_holds(g, pri, {false, false, false, false, false}, &violator));
  EXPECT_EQ(violator, 0U);
}

}  // namespace
