// util::MmapFile — the mapped path and the owned-buffer fallback must be
// observationally identical through data()/size(), and the new paging
// controls (advise / resident_bytes) must be safe no-ops wherever the
// platform cannot honor them. The borrowed-snapshot machinery (PR 8) leans
// on both: DynamicGraph::borrow reads the mapped bytes in place and the
// stats tooling reports resident vs mapped, so these contracts get their
// own tests instead of riding along in test_snapshot.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <numeric>
#include <string>
#include <vector>

#include "util/mmap_file.hpp"

namespace {

using dmis::util::MapAdvice;
using dmis::util::MmapFile;

class MmapFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "dmis_mmap_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string write_file(const std::string& name, const std::vector<std::uint8_t>& bytes) {
    const std::string path = (dir_ / name).string();
    std::FILE* f = std::fopen(path.c_str(), "wb");
    EXPECT_NE(f, nullptr);
    if (!bytes.empty()) {
      EXPECT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    }
    std::fclose(f);
    return path;
  }

  std::filesystem::path dir_;
};

std::vector<std::uint8_t> pattern(std::size_t n) {
  std::vector<std::uint8_t> bytes(n);
  std::iota(bytes.begin(), bytes.end(), static_cast<std::uint8_t>(7));
  return bytes;
}

TEST_F(MmapFileTest, BothPathsSeeIdenticalBytes) {
  const auto bytes = pattern(3 * 4096 + 123);  // straddles page boundaries
  const std::string path = write_file("data.bin", bytes);
  for (const bool force_read : {false, true}) {
    MmapFile file;
    std::string error;
    ASSERT_TRUE(file.open(path, &error, force_read)) << error;
    EXPECT_TRUE(file.is_open());
    if (force_read) {
      EXPECT_FALSE(file.is_mapped());
    }
    ASSERT_EQ(file.size(), bytes.size());
    EXPECT_EQ(std::memcmp(file.data(), bytes.data(), bytes.size()), 0);
  }
}

TEST_F(MmapFileTest, AdviseSucceedsOnEveryPatternAndBothPaths) {
  const std::string path = write_file("advice.bin", pattern(8 * 4096));
  for (const bool force_read : {false, true}) {
    MmapFile file;
    std::string error;
    ASSERT_TRUE(file.open(path, &error, force_read)) << error;
    for (const MapAdvice advice :
         {MapAdvice::kNormal, MapAdvice::kSequential, MapAdvice::kRandom,
          MapAdvice::kWillNeed, MapAdvice::kDontNeed}) {
      EXPECT_TRUE(file.advise(advice));
    }
    // Post-advice the bytes must still read back intact: the mapping is
    // read-only MAP_PRIVATE, so even kDontNeed only drops *clean* pages,
    // which re-fault from the file.
    const auto bytes = pattern(8 * 4096);
    EXPECT_EQ(std::memcmp(file.data(), bytes.data(), bytes.size()), 0);
  }
}

TEST_F(MmapFileTest, AdviseOnClosedFileIsANoOp) {
  MmapFile file;
  EXPECT_TRUE(file.advise(MapAdvice::kSequential));
  EXPECT_EQ(file.resident_bytes(), 0U);
}

TEST_F(MmapFileTest, ResidentBytesIsBoundedAndGrowsWithTouches) {
  const std::size_t n = 64 * 4096;
  const std::string path = write_file("resident.bin", pattern(n));
  MmapFile file;
  std::string error;
  ASSERT_TRUE(file.open(path, &error)) << error;
  EXPECT_LE(file.resident_bytes(), file.size());
  // Touch every page; afterwards the whole view must be resident (on the
  // fallback path it already was — the owned buffer is heap memory).
  std::size_t sink = 0;
  for (std::size_t i = 0; i < n; i += 512) sink += file.data()[i];
  EXPECT_GT(sink, 0U);
  EXPECT_EQ(file.resident_bytes(), file.size());
}

TEST_F(MmapFileTest, FallbackReportsBufferFullyResident) {
  const std::string path = write_file("fallback.bin", pattern(4096 + 17));
  MmapFile file;
  std::string error;
  ASSERT_TRUE(file.open(path, &error, /*force_read=*/true)) << error;
  EXPECT_FALSE(file.is_mapped());
  EXPECT_EQ(file.resident_bytes(), file.size());
}

TEST_F(MmapFileTest, DontNeedIsNonDestructiveOnTheMappedPath) {
  const std::size_t n = 256 * 4096;
  const std::string path = write_file("dontneed.bin", pattern(n));
  MmapFile file;
  std::string error;
  ASSERT_TRUE(file.open(path, &error)) << error;
  if (!file.is_mapped()) GTEST_SKIP() << "no mmap on this platform";
  std::size_t sink = 0;
  for (std::size_t i = 0; i < n; i += 4096) sink += file.data()[i];
  ASSERT_EQ(file.resident_bytes(), file.size());
  ASSERT_TRUE(file.advise(MapAdvice::kDontNeed));
  // mincore on a file-backed mapping reports page-cache residency, and
  // kDontNeed does not evict still-cached file pages (it only drops the
  // process's private copies) — so residency may legitimately stay at
  // size() here. What we can pin down: the call succeeds, the bound
  // holds, and the data re-reads intact afterwards.
  EXPECT_LE(file.resident_bytes(), file.size());
  const auto bytes = pattern(n);
  EXPECT_EQ(std::memcmp(file.data(), bytes.data(), n), 0);
  (void)sink;
}

TEST_F(MmapFileTest, ZeroLengthFileOpensEmpty) {
  const std::string path = write_file("empty.bin", {});
  for (const bool force_read : {false, true}) {
    MmapFile file;
    std::string error;
    ASSERT_TRUE(file.open(path, &error, force_read)) << error;
    EXPECT_EQ(file.size(), 0U);
    EXPECT_EQ(file.resident_bytes(), 0U);
    EXPECT_TRUE(file.advise(MapAdvice::kRandom));
  }
}

}  // namespace
