// Unit tests for graph serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace {

using namespace dmis::graph;

TEST(GraphIo, RoundTrip) {
  dmis::util::Rng rng(5);
  const auto g = erdos_renyi(40, 0.1, rng);
  std::stringstream ss;
  write_edge_list(ss, g);
  const auto back = read_edge_list(ss);
  EXPECT_TRUE(g == back);
}

TEST(GraphIo, CommentsAndBlanksIgnored) {
  std::stringstream ss("# header\n\nn 3\n# mid\ne 0 2\n");
  const auto g = read_edge_list(ss);
  EXPECT_EQ(g.node_count(), 3U);
  EXPECT_TRUE(g.has_edge(0, 2));
}

TEST(GraphIo, DotContainsStructure) {
  const auto g = path(3);
  const std::string dot = to_dot(g, {1});
  EXPECT_NE(dot.find("graph G {"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 1"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=gold"), std::string::npos);
}

TEST(GraphIoDeath, MalformedEdgeRejected) {
  std::stringstream ss("n 2\ne 0\n");
  EXPECT_DEATH((void)read_edge_list(ss), "malformed");
}

TEST(GraphIoDeath, UnknownRecordRejected) {
  std::stringstream ss("x 1 2\n");
  EXPECT_DEATH((void)read_edge_list(ss), "unknown record");
}

}  // namespace
