#!/usr/bin/env python3
"""Bench-regression gate: compare a fresh bench run against a committed
BENCH_*.json reference and fail on regression.

Tolerances (CI's contract — change them here, not in the workflow):

* update_latency — a (workload, n) cell FAILS if its updates_per_sec drops
  more than THROUGHPUT_TOLERANCE (default 30%) below the reference cell.
  Throughput here is the sum of individually-timed op latencies, which
  scheduler interference only ever *inflates* — so pass several candidate
  files (CI smoke-runs the bench three times) and the gate takes the
  per-cell best before comparing; best-of-N converges on the machine's
  quiet-state speed while a genuine hot-path regression (the 2x injection
  the CI self-test simulates) still blows straight through the band.
  adjustments_per_update is machine-independent (same seed ⇒ same trace ⇒
  same greedy fixpoint), so it gets the much tighter
  DETERMINISTIC_TOLERANCE (default 5%) — drift there is a correctness
  smell, not noise — and must be bit-identical across the candidate runs.

* distributed_cost — costs are round/broadcast/adjustment *counts*, fully
  deterministic given the seed, so graceful-bucket means are gated at
  DETERMINISTIC_TOLERANCE against the reference. Additionally every cell
  must respect the paper's Lemma 13 envelope: abrupt-delete mean broadcasts
  <= ENVELOPE_SLACK x mean min{log2 n, d(v*)} (the committed baselines sit
  at 0.3-0.5x, so 1.5x means the O(min{log n, d}) bound has genuinely
  broken). Oracle violations cannot reach this script: bench_distributed_cost
  aborts before writing JSON if any cell disagrees with the sequential
  greedy oracle — a cell that exists has been oracle-verified.

* skew — the heavy-tailed / adversarial-churn sweep (bench_skew), cells
  keyed (graph distribution, churn policy, n). Same regime as
  distributed_cost: every cost is a deterministic count, so bucket means
  gate at DETERMINISTIC_TOLERANCE against the reference, and the Lemma 13
  envelope (abrupt-delete mean broadcasts <= ENVELOPE_SLACK x mean
  min{log2 n, d(v*)}) is checked intrinsically on every cell with at least
  MIN_ENVELOPE_SAMPLES abrupt deletes. Hub-targeting policies put every
  abrupt delete on a max-degree node, so this is the envelope check in the
  regime where min{log n, d} genuinely binds — the committed hub-kill and
  burst-mute cells (hundreds to thousands of samples) sit at 0.2-0.4x.
  Flash-crowd cells collapse a hub only once per ~65-op storm (~12 samples
  a cell) and the per-collapse cost is bimodal — ~0 when the hub was
  dominated, ~d(v*) when its freshly-inserted leaves must join — so their
  cell means are not expectation estimates and are gated against the
  reference only (the star-collapse cliff those cells quantify is
  documented in docs/BENCHMARKS.md). Pure-adversarial policies may
  legitimately emit zero graceful ops; empty buckets are skipped, never
  compared.

* snapshot — the warm-start cells. engine_warm_s (engine-ready time from a
  version-2 snapshot, persisted keys + membership, zero greedy recompute)
  is a wall-clock timing, so it gets the same best-of-N fold and
  THROUGHPUT_TOLERANCE band as update_latency: a candidate cell FAILS if
  its folded warm time exceeds the reference by more than the tolerance.
  warm_speedup (engine_cold_s / engine_warm_s) is measured from strictly
  interleaved cold/warm reps inside ONE process, so the ratio is robust to
  machine-class differences and is gated against the reference even under
  --deterministic-only (where the absolute warm-time band is skipped, like
  every other wall-clock check).

  The borrowed columns (borrow_open_s / borrow_speedup, PRs since the
  zero-copy graphs landed) gate the same way: the speedup is a same-process
  interleaved ratio (checked even under --deterministic-only, against the
  reference AND against the intrinsic >= 10x floor at n >= 1e6), the
  absolute open time is wall clock (best-of-N fold, throughput band).

  The v3 columns (engine_warm_v3_s / v3_warm_ratio, PRs since the
  shard-partitioned snapshot landed) gate the ratio: the v3 warm load is
  strictly interleaved with the v2 warm load in one process, and at S=1
  it walks the same fill loop over the same sections (the shard table is
  a fixed 128-byte extension), so the ratio must stay within the
  intrinsic V3_WARM_NOISE_BAR of 1.0 — checked even under
  --deterministic-only — plus the usual reference band.

* oom — the beyond-RAM cells (bench_oom: one materialized, one borrowed,
  both under a heap cap smaller than the snapshot). The claim is intrinsic
  and needs no reference: materialized load must FAIL under the cap,
  borrowed open + query + churn must SUCCEED, and the borrowed heap
  high-water must stay under the cap. Borrowed throughput under the cap is
  wall clock and gets the usual reference band.

* recovery — the crash-recovery cells (bench_recovery: one per checkpoint
  interval). Bytes and op counts are deterministic given the seed
  (wal_bytes, checkpoint_bytes, checkpoints, payload_bytes, tail_ops), so
  they must be bit-identical across candidate runs and get
  DETERMINISTIC_TOLERANCE against the reference. rto_s and
  ingest_ops_per_sec are wall clock: best-of-N fold, THROUGHPUT_TOLERANCE
  band. Two intrinsic checks need no reference: tail_ops must respect the
  interval + batch bound (a checkpoint fires at the first batch boundary at
  or past the interval, so a bigger tail means the cadence logic broke),
  and across cells the replay term of the RTO must grow with tail_ops
  (compared at >= 10x tail separation so wall-clock noise cannot flip it) —
  that is the "checkpoints bound recovery time" claim itself.

* replication — the leader/follower cells (bench_replication: one per
  fsync policy). The wire and lag fields are deterministic given the seed
  and the loss-free in-process transport (wal_bytes, shipped_bytes,
  shipments, applied_ops, mean_lag_ops, max_lag_ops — the bench itself
  aborts if they drift between reps), so they must be bit-identical across
  candidate runs and get DETERMINISTIC_TOLERANCE against the reference.
  ingest_ops_per_sec (max fold) and failover_rto_s / catchup_s (min fold)
  are wall clock: THROUGHPUT_TOLERANCE band. One intrinsic check needs no
  reference: the synchronous policies (everyop, everybatch) must report
  zero lag — the durable-cursor contract, not a tuning outcome. A cell
  that exists has already survived the bench's own failover differential
  check (promoted follower == never-crashed reference).

Cells present in the candidate but absent from the reference are skipped
(so a smoke run may sweep a subset); a candidate with *no* matching cell is
an error, since the gate would otherwise silently gate nothing.

The throughput band assumes the machine running the candidate is in the
reference's speed class (the committed baselines come from the single-core
dev container; GitHub's ubuntu runners are). Where that assumption is
structurally false — CI's scalar-flatset leg is deliberately built without
the SIMD probes the baseline was recorded with — pass --deterministic-only
to keep the machine-independent checks (adjustment counts, distributed
costs, envelope) and skip throughput.

Usage:
  check_bench.py --ref REFERENCE CANDIDATE [CANDIDATE...]
                 [--tolerance T] [--deterministic-only] [--self-test]

--self-test injects a synthetic 2x regression into a copy of the merged
candidate and asserts the gate catches it **using the candidate itself as
the reference** — that exercises the exact comparison machinery on
same-machine numbers, so it passes or fails identically on any hardware
(against the committed reference, a fast machine's halved candidate could
still clear the absolute band). CI runs it after the real gate so a
silently broken gate fails loudly instead of waving regressions through.
"""

import argparse
import copy
import json
import sys

THROUGHPUT_TOLERANCE = 0.30
DETERMINISTIC_TOLERANCE = 0.05
ENVELOPE_SLACK = 1.5
# Lemma 13 bounds an *expectation*; on skewed cells the per-delete cost is
# bimodal (a collapsing hub either changes nothing or wakes its whole
# neighborhood), so a cell mean only estimates the expectation once it has
# enough samples. Below this bar the envelope column is reference-gated only.
MIN_ENVELOPE_SAMPLES = 100
BORROW_SPEEDUP_FLOOR = 10.0
# Single-loader v3 warm load must be within this fraction of the v2 warm
# load (the shard extension is 128 fixed bytes; S=1 walks the same fill
# loop over the same sections, so anything beyond noise is a real tax).
# Small-n cells warm in sub-millisecond times where a pure ratio flaps, so
# the gate grants the same 100us absolute grace as the borrow-open band —
# negligible at the n=1e6 acceptance point.
V3_WARM_NOISE_BAR = 0.10
V3_WARM_ABS_SLACK_S = 1e-4


def close(candidate, reference, tolerance, absolute=1e-3):
    """|candidate - reference| within tolerance x reference (+ small absolute
    slack so near-zero deterministic means don't trip on formatting)."""
    return abs(candidate - reference) <= tolerance * reference + absolute


def merge_best(candidates):
    """Fold N candidate runs into one: per-cell max throughput / min warm
    time (noise only ever slows a cell down), asserting the deterministic
    fields agree exactly."""
    merged = copy.deepcopy(candidates[0])
    kind = merged.get("bench")
    if kind == "snapshot":
        cells = {r["n"]: r for r in merged["results"]}
        for other in candidates[1:]:
            for row in other["results"]:
                cell = cells.get(row["n"])
                if cell is None:
                    continue
                for field in ("edges", "snapshot_bytes", "trace_bytes"):
                    if row[field] != cell[field]:
                        raise SystemExit(
                            f"FAIL: {field} differs between candidate runs at "
                            f"n={row['n']} — nondeterministic snapshot writer")
                for field in ("engine_warm_s", "engine_cold_s", "load_s",
                              "borrow_open_s", "borrow_first_op_s",
                              "engine_warm_v3_s"):
                    if field in row and field in cell:
                        cell[field] = min(cell[field], row[field])
        for cell in cells.values():
            if cell["engine_warm_s"] > 0:
                cell["warm_speedup"] = cell["engine_cold_s"] / cell["engine_warm_s"]
            if cell.get("borrow_open_s", 0) > 0:
                cell["borrow_speedup"] = cell["load_s"] / cell["borrow_open_s"]
            if cell.get("engine_warm_v3_s", 0) > 0 and cell["engine_warm_s"] > 0:
                cell["v3_warm_ratio"] = (cell["engine_warm_v3_s"] /
                                         cell["engine_warm_s"])
        return merged
    if kind == "recovery":
        # Cells are (interval, ops): the byte/op fields are deterministic
        # only for a fixed workload length, so a smoke run must sweep a
        # subset of the reference's intervals at the reference's --ops.
        cells = {(r["interval"], r["ops"]): r for r in merged["results"]}
        for other in candidates[1:]:
            for row in other["results"]:
                cell = cells.get((row["interval"], row["ops"]))
                if cell is None:
                    continue
                for field in ("wal_bytes", "checkpoint_bytes", "checkpoints",
                              "payload_bytes", "tail_ops"):
                    if row[field] != cell[field]:
                        raise SystemExit(
                            f"FAIL: {field} differs between candidate runs at "
                            f"interval={row['interval']} — nondeterministic "
                            f"WAL/checkpoint writer")
                if row["rto_s"] < cell["rto_s"]:
                    for field in ("rto_s", "open_s", "load_s", "warm_s",
                                  "replay_s"):
                        if field in row and field in cell:
                            cell[field] = row[field]
                cell["ingest_ops_per_sec"] = max(cell["ingest_ops_per_sec"],
                                                 row["ingest_ops_per_sec"])
        return merged
    if kind == "replication":
        # Cells are (policy, ops): the wire/lag fields are deterministic
        # only for a fixed workload length, so a smoke run must sweep a
        # subset of the reference's policies at the reference's --ops.
        cells = {(r["policy"], r["ops"]): r for r in merged["results"]}
        for other in candidates[1:]:
            for row in other["results"]:
                cell = cells.get((row["policy"], row["ops"]))
                if cell is None:
                    continue
                for field in ("wal_bytes", "shipped_bytes", "shipments",
                              "applied_ops", "promoted_lsn",
                              "mean_lag_ops", "max_lag_ops"):
                    if row[field] != cell[field]:
                        raise SystemExit(
                            f"FAIL: {field} differs between candidate runs at "
                            f"policy={row['policy']} — nondeterministic "
                            f"shipping pipeline")
                if row["ingest_ops_per_sec"] > cell["ingest_ops_per_sec"]:
                    cell["ingest_ops_per_sec"] = row["ingest_ops_per_sec"]
                    cell["ingest_s"] = row["ingest_s"]
                cell["catchup_s"] = min(cell["catchup_s"], row["catchup_s"])
                cell["failover_rto_s"] = min(cell["failover_rto_s"],
                                             row["failover_rto_s"])
        return merged
    if kind != "update_latency":
        # Other kinds gate deterministic counts only — one run carries all
        # the signal, and wall-clock fields legitimately differ between
        # runs, so there is nothing to fold.
        if len(candidates) > 1:
            print(f"note: using first of {len(candidates)} candidate runs "
                  f"(bench kind gates deterministic counts)")
        return merged
    cells = {(r["workload"], r["n"]): r for r in merged["results"]}
    for other in candidates[1:]:
        for row in other["results"]:
            cell = cells.get((row["workload"], row["n"]))
            if cell is None:
                continue
            if row["adjustments_per_update"] != cell["adjustments_per_update"]:
                raise SystemExit(
                    "FAIL: adjustments_per_update differs between candidate "
                    f"runs at {(row['workload'], row['n'])} — nondeterminism")
            if row["updates_per_sec"] > cell["updates_per_sec"]:
                cell.update(row)
    return merged


def check_update_latency(candidate, reference, tolerance, deterministic_only):
    failures = []
    ref = {(r["workload"], r["n"]): r for r in reference["results"]}
    matched = 0
    for row in candidate["results"]:
        key = (row["workload"], row["n"])
        base = ref.get(key)
        if base is None:
            print(f"SKIP {key}: no reference cell")
            continue
        matched += 1
        cell_failures = []
        got, want = row["updates_per_sec"], base["updates_per_sec"]
        if not deterministic_only and got < want * (1.0 - tolerance):
            cell_failures.append(
                f"{key}: throughput regression {got:.0f} upd/s vs reference "
                f"{want:.0f} (> {tolerance:.0%} drop)")
        got, want = row["adjustments_per_update"], base["adjustments_per_update"]
        if not close(got, want, DETERMINISTIC_TOLERANCE):
            cell_failures.append(
                f"{key}: adjustments_per_update {got:.4f} vs reference {want:.4f} "
                f"— deterministic quantity moved (> {DETERMINISTIC_TOLERANCE:.0%})")
        if not cell_failures:
            print(f"OK   {key}: {row['updates_per_sec']:.0f} upd/s "
                  f"(reference {base['updates_per_sec']:.0f})")
        failures.extend(cell_failures)
    return failures, matched


def check_distributed_cost(candidate, reference, _tolerance, _deterministic_only):
    failures = []
    ref = {(r["workload"], r["n"]): r for r in reference["results"]}
    matched = 0
    for row in candidate["results"]:
        key = (row["workload"], row["n"])
        cell_failures = []
        # Envelope check is intrinsic to the cell — gate it even without a
        # reference (Lemma 13: O(min{log n, d}) broadcasts per abrupt delete).
        abrupt = row.get("abrupt_node_delete", {})
        if abrupt.get("count", 0) > 0:
            got = abrupt["mean_broadcasts"]
            envelope = abrupt["mean_envelope"]
            if got > ENVELOPE_SLACK * envelope:
                cell_failures.append(
                    f"{key}: abrupt-delete broadcasts {got:.2f} exceed "
                    f"{ENVELOPE_SLACK}x the min{{log n, d}} envelope {envelope:.2f}")
        base = ref.get(key)
        if base is None:
            print(f"SKIP {key}: no reference cell (envelope checked)")
            failures.extend(cell_failures)
            continue
        matched += 1
        for field in ("mean_broadcasts", "mean_adjustments", "mean_rounds"):
            got, want = row["graceful"][field], base["graceful"][field]
            if not close(got, want, DETERMINISTIC_TOLERANCE, absolute=0.02):
                cell_failures.append(
                    f"{key}: graceful {field} {got:.3f} vs reference {want:.3f} "
                    f"— deterministic cost moved (> {DETERMINISTIC_TOLERANCE:.0%})")
        if not cell_failures:
            print(f"OK   {key}: graceful bcast {row['graceful']['mean_broadcasts']:.2f} "
                  f"(reference {base['graceful']['mean_broadcasts']:.2f})")
        failures.extend(cell_failures)
    return failures, matched


def skew_thin_cell_note(thin_cells):
    """The one-per-RUN summary for skew cells below the envelope sample bar.

    Printed once after the cell loop, never per cell: a flash-crowd sweep
    has a dozen thin cells per run, and a note per cell buried the real
    OK/FAIL lines under repeated boilerplate (each cell's situation is the
    same — reference-gated, not intrinsically checked). Returns None when
    no cell was thin; unit-asserted by --self-test."""
    if not thin_cells:
        return None
    cells = ", ".join(f"{key} ({count})" for key, count in thin_cells)
    return (f"note {len(thin_cells)} cell(s) under {MIN_ENVELOPE_SAMPLES} abrupt "
            f"samples — envelope reference-gated, not intrinsically checked: "
            f"{cells}")


def check_skew(candidate, reference, _tolerance, _deterministic_only):
    """Skewed-graph sweep (bench_skew): like distributed_cost, every cost is
    a deterministic count, so bucket means gate at DETERMINISTIC_TOLERANCE
    against the reference, and the Lemma 13 envelope check is intrinsic —
    on heavy-tailed graphs under hub-targeting churn it is the regime where
    min{log n, d} actually binds, so a break here is the paper's bound
    failing exactly where it matters. Cells are keyed (graph, policy, n,
    ops) — the counts are deterministic only for a fixed trace length, so a
    smoke run must sweep a subset of the reference's cells at the
    reference's --ops. Pure-adversarial policies legitimately have empty
    graceful buckets, so each bucket is only compared when both sides saw
    ops in it."""
    failures = []
    ref = {(r["graph"], r["policy"], r["n"], r["ops"]): r
           for r in reference["results"]}
    matched = 0
    thin_cells = []
    for row in candidate["results"]:
        key = (row["graph"], row["policy"], row["n"], row["ops"])
        cell_failures = []
        abrupt = row.get("abrupt_node_delete", {})
        if abrupt.get("count", 0) >= MIN_ENVELOPE_SAMPLES:
            got = abrupt["mean_broadcasts"]
            envelope = abrupt["mean_envelope"]
            if got > ENVELOPE_SLACK * envelope:
                cell_failures.append(
                    f"{key}: abrupt-delete broadcasts {got:.2f} exceed "
                    f"{ENVELOPE_SLACK}x the min{{log n, d}} envelope {envelope:.2f}")
        elif abrupt.get("count", 0) > 0:
            thin_cells.append((key, abrupt["count"]))
        base = ref.get(key)
        if base is None:
            print(f"SKIP {key}: no reference cell (envelope checked)")
            failures.extend(cell_failures)
            continue
        matched += 1
        for bucket, fields in (
                ("graceful", ("mean_broadcasts", "mean_adjustments", "mean_rounds")),
                ("node_insert", ("mean_broadcasts", "mean_adjustments")),
                ("abrupt_node_delete",
                 ("mean_broadcasts", "mean_envelope", "mean_adjustments"))):
            if row[bucket]["count"] == 0 or base[bucket]["count"] == 0:
                continue
            for field in fields:
                got, want = row[bucket][field], base[bucket][field]
                if not close(got, want, DETERMINISTIC_TOLERANCE, absolute=0.02):
                    cell_failures.append(
                        f"{key}: {bucket} {field} {got:.3f} vs reference {want:.3f} "
                        f"— deterministic cost moved (> {DETERMINISTIC_TOLERANCE:.0%})")
        if not cell_failures:
            abr = row["abrupt_node_delete"]
            print(f"OK   {key}: abrupt bcast {abr['mean_broadcasts']:.2f} "
                  f"vs envelope {abr['mean_envelope']:.2f}")
        failures.extend(cell_failures)
    note = skew_thin_cell_note(thin_cells)
    if note is not None:
        print(note)
    return failures, matched


def check_snapshot(candidate, reference, tolerance, deterministic_only):
    failures = []
    ref = {r["n"]: r for r in reference["results"]}
    matched = 0
    for row in candidate["results"]:
        key = row["n"]
        base = ref.get(key)
        if base is None:
            print(f"SKIP n={key}: no reference cell")
            continue
        matched += 1
        cell_failures = []
        got, want = row["engine_warm_s"], base["engine_warm_s"]
        if not deterministic_only and got > want * (1.0 + tolerance):
            cell_failures.append(
                f"n={key}: warm engine-ready time regression {got:.6f}s vs "
                f"reference {want:.6f}s (> {tolerance:.0%} slower)")
        got, want = row["warm_speedup"], base["warm_speedup"]
        if got < want * (1.0 - tolerance):
            cell_failures.append(
                f"n={key}: warm-vs-cold speedup collapsed to {got:.2f}x vs "
                f"reference {want:.2f}x (> {tolerance:.0%} drop; the ratio is "
                f"same-process interleaved, so this is not machine drift)")
        # Borrowed columns: the open-to-first-query ratio is same-process
        # interleaved with the materialized load, so like warm_speedup it is
        # gated even under --deterministic-only. The >= 10x floor at n >= 1e6
        # is the acceptance bar for the zero-copy path — intrinsic, no
        # reference needed.
        if "borrow_speedup" in row:
            got = row["borrow_speedup"]
            if key >= 1_000_000 and got < BORROW_SPEEDUP_FLOOR:
                cell_failures.append(
                    f"n={key}: borrowed open-to-first-query is only {got:.1f}x "
                    f"faster than the materialized load (floor: "
                    f"{BORROW_SPEEDUP_FLOOR}x) — the zero-copy open degraded "
                    f"to a copy")
            want = base.get("borrow_speedup")
            if want is not None and got < want * (1.0 - tolerance):
                cell_failures.append(
                    f"n={key}: borrow speedup collapsed to {got:.1f}x vs "
                    f"reference {want:.1f}x (> {tolerance:.0%} drop; "
                    f"same-process interleaved ratio)")
            if not deterministic_only and "borrow_open_s" in base:
                got, want = row["borrow_open_s"], base["borrow_open_s"]
                if got > want * (1.0 + tolerance) + 1e-4:
                    cell_failures.append(
                        f"n={key}: borrowed open regression {got:.6f}s vs "
                        f"reference {want:.6f}s (> {tolerance:.0%} slower)")
        # v3 (shard-partitioned) columns: the v3-vs-v2 warm ratio is
        # strictly interleaved in-process, so S=1 must sit within the
        # V3_WARM_NOISE_BAR of the v2 warm load — the shard table only adds
        # a fixed 128-byte extension, and with one loader the fill loop is
        # the same code walking the same sections. Intrinsic, no reference
        # needed; gated even under --deterministic-only.
        if "v3_warm_ratio" in row:
            got = row["v3_warm_ratio"]
            overhead = row["engine_warm_v3_s"] - row["engine_warm_s"]
            if overhead > (V3_WARM_NOISE_BAR * row["engine_warm_s"]
                           + V3_WARM_ABS_SLACK_S):
                cell_failures.append(
                    f"n={key}: v3 warm load is {got:.2f}x the v2 warm load "
                    f"at S=1 (bar: {1.0 + V3_WARM_NOISE_BAR:.2f}x + "
                    f"{V3_WARM_ABS_SLACK_S * 1e6:.0f}us) — the "
                    f"shard-partitioned path taxes the single-loader case")
            want = base.get("v3_warm_ratio")
            if want is not None and got > want * (1.0 + tolerance) + 0.05:
                cell_failures.append(
                    f"n={key}: v3/v2 warm ratio grew to {got:.2f}x vs "
                    f"reference {want:.2f}x (> {tolerance:.0%}; "
                    f"same-process interleaved ratio)")
        if not cell_failures:
            print(f"OK   n={key}: warm {row['engine_warm_s']:.6f}s, "
                  f"{row['warm_speedup']:.2f}x vs cold "
                  f"(reference {base['engine_warm_s']:.6f}s, "
                  f"{base['warm_speedup']:.2f}x)")
        failures.extend(cell_failures)
    return failures, matched


def check_recovery(candidate, reference, tolerance, deterministic_only):
    failures = []
    ref = {(r["interval"], r["ops"]): r for r in reference["results"]}
    batch = candidate.get("config", {}).get("batch", 1)
    matched = 0
    rows = candidate["results"]
    # Intrinsic: a checkpoint fires at the first batch boundary at or past
    # the interval, so the replay tail can never reach interval + batch.
    for row in rows:
        if row["interval"] > 0 and row["tail_ops"] >= row["interval"] + batch:
            failures.append(
                f"interval={row['interval']}: tail_ops {row['tail_ops']} breaks "
                f"the interval + batch ({batch}) bound — checkpoint cadence broke")
    # Intrinsic: more tail must cost more replay — the reason checkpoints
    # exist. Compared at >= 10x tail separation so wall clock cannot flip it.
    if not deterministic_only and len(rows) >= 2:
        lo = min(rows, key=lambda r: r["tail_ops"])
        hi = max(rows, key=lambda r: r["tail_ops"])
        if hi["tail_ops"] >= 10 * max(lo["tail_ops"], 1) and \
                hi["replay_s"] <= lo["replay_s"]:
            failures.append(
                f"replay_s did not grow with the tail: {hi['tail_ops']} ops "
                f"replayed in {hi['replay_s']:.6f}s vs {lo['tail_ops']} ops in "
                f"{lo['replay_s']:.6f}s — checkpoints no longer bound recovery")
    for row in rows:
        key = (row["interval"], row["ops"])
        base = ref.get(key)
        if base is None:
            print(f"SKIP interval={row['interval']}: no reference cell at "
                  f"ops={row['ops']} (intrinsics checked)")
            continue
        matched += 1
        cell_failures = []
        for field in ("wal_bytes", "checkpoint_bytes", "checkpoints",
                      "payload_bytes", "tail_ops", "wal_amplification"):
            got, want = row[field], base[field]
            if not close(got, want, DETERMINISTIC_TOLERANCE):
                cell_failures.append(
                    f"interval={row['interval']}: {field} {got} vs reference {want} — "
                    f"deterministic quantity moved (> {DETERMINISTIC_TOLERANCE:.0%})")
        if not deterministic_only:
            got, want = row["rto_s"], base["rto_s"]
            if got > want * (1.0 + tolerance) + 1e-3:
                cell_failures.append(
                    f"interval={row['interval']}: RTO regression {got:.6f}s vs reference "
                    f"{want:.6f}s (> {tolerance:.0%} slower)")
            got, want = row["ingest_ops_per_sec"], base["ingest_ops_per_sec"]
            if got < want * (1.0 - tolerance):
                cell_failures.append(
                    f"interval={row['interval']}: ingest regression {got:.0f} ops/s vs "
                    f"reference {want:.0f} (> {tolerance:.0%} drop)")
        if not cell_failures:
            print(f"OK   interval={row['interval']}: tail {row['tail_ops']} ops, "
                  f"rto {row['rto_s']:.6f}s "
                  f"(reference {base['rto_s']:.6f}s)")
        failures.extend(cell_failures)
    return failures, matched


def check_replication(candidate, reference, tolerance, deterministic_only):
    failures = []
    ref = {(r["policy"], r["ops"]): r for r in reference["results"]}
    matched = 0
    # Intrinsic: synchronous policies ship through the durable cursor, which
    # covers every applied op the moment the batch's fsync lands — lag is a
    # contract there, not a tuning outcome. No reference needed.
    for row in candidate["results"]:
        if row["policy"] in ("everyop", "everybatch") and row["max_lag_ops"] != 0:
            failures.append(
                f"policy={row['policy']}: max_lag_ops {row['max_lag_ops']} != 0 "
                f"— the durable-cursor contract broke for a synchronous policy")
    for row in candidate["results"]:
        key = (row["policy"], row["ops"])
        base = ref.get(key)
        if base is None:
            print(f"SKIP policy={row['policy']}: no reference cell at "
                  f"ops={row['ops']} (intrinsics checked)")
            continue
        matched += 1
        cell_failures = []
        for field in ("wal_bytes", "shipped_bytes", "shipments", "applied_ops",
                      "promoted_lsn", "mean_lag_ops", "max_lag_ops"):
            got, want = row[field], base[field]
            if not close(got, want, DETERMINISTIC_TOLERANCE):
                cell_failures.append(
                    f"policy={row['policy']}: {field} {got} vs reference {want} — "
                    f"deterministic quantity moved (> {DETERMINISTIC_TOLERANCE:.0%})")
        if not deterministic_only:
            got, want = row["failover_rto_s"], base["failover_rto_s"]
            if got > want * (1.0 + tolerance) + 1e-3:
                cell_failures.append(
                    f"policy={row['policy']}: failover RTO regression {got:.6f}s "
                    f"vs reference {want:.6f}s (> {tolerance:.0%} slower)")
            got, want = row["catchup_s"], base["catchup_s"]
            if got > want * (1.0 + tolerance) + 1e-3:
                cell_failures.append(
                    f"policy={row['policy']}: catch-up regression {got:.6f}s vs "
                    f"reference {want:.6f}s (> {tolerance:.0%} slower)")
            got, want = row["ingest_ops_per_sec"], base["ingest_ops_per_sec"]
            if got < want * (1.0 - tolerance):
                cell_failures.append(
                    f"policy={row['policy']}: ingest regression {got:.0f} ops/s "
                    f"vs reference {want:.0f} (> {tolerance:.0%} drop)")
        if not cell_failures:
            print(f"OK   policy={row['policy']}: lag mean {row['mean_lag_ops']:.1f} "
                  f"max {row['max_lag_ops']}, rto {row['failover_rto_s']:.6f}s "
                  f"(reference {base['failover_rto_s']:.6f}s)")
        failures.extend(cell_failures)
    return failures, matched


def check_oom(candidate, reference, tolerance, deterministic_only):
    failures = []
    ref = {r["mode"]: r for r in reference["results"]}
    config = candidate.get("config", {})
    matched = 0
    # Intrinsics — the beyond-RAM claim itself, no reference needed: under a
    # heap cap smaller than the graph, the materialized load must fail and
    # the borrowed path must serve.
    if config.get("slack_bytes", 0) >= config.get("snapshot_bytes", 1):
        failures.append(
            f"oom: heap slack {config.get('slack_bytes')} is not below the "
            f"snapshot {config.get('snapshot_bytes')} — the cap proves nothing")
    for row in candidate["results"]:
        if row["mode"] == "materialized" and row["loaded"]:
            failures.append(
                "oom: the materialized load SUCCEEDED under the heap cap — "
                "either the cap did not bind or load() stopped copying "
                "(which would make this bench vacuous)")
        if row["mode"] == "borrowed":
            if not row["loaded"]:
                failures.append(
                    "oom: the borrowed path failed under the heap cap — "
                    "beyond-RAM operation is broken")
            if row.get("vm_data_bytes", 0) > config.get("cap_bytes", float("inf")):
                failures.append(
                    f"oom: borrowed heap {row['vm_data_bytes']} exceeds the cap "
                    f"{config['cap_bytes']} — the overlay is not O(touched set)")
        base = ref.get(row["mode"])
        if base is None:
            print(f"SKIP mode={row['mode']}: no reference cell (intrinsics checked)")
            continue
        matched += 1
        if row["mode"] == "borrowed" and not deterministic_only:
            for field, slower in (("churn_ops_per_sec", False),
                                  ("query_ops_per_sec", False),
                                  ("open_s", True)):
                got, want = row[field], base[field]
                bad = got > want * (1.0 + tolerance) + 1e-4 if slower \
                    else got < want * (1.0 - tolerance)
                if bad:
                    failures.append(
                        f"oom: borrowed {field} {got:.6g} vs reference "
                        f"{want:.6g} (> {tolerance:.0%} worse under the cap)")
    if not failures:
        for row in candidate["results"]:
            print(f"OK   mode={row['mode']}: loaded={row['loaded']}")
    return failures, matched


CHECKERS = {
    "update_latency": check_update_latency,
    "distributed_cost": check_distributed_cost,
    "skew": check_skew,
    "snapshot": check_snapshot,
    "recovery": check_recovery,
    "replication": check_replication,
    "oom": check_oom,
}


def run_gate(candidate, reference, tolerance, deterministic_only=False):
    kind = candidate.get("bench")
    if kind != reference.get("bench"):
        print(f"FAIL: candidate is '{kind}' but reference is "
              f"'{reference.get('bench')}'")
        return 1
    checker = CHECKERS.get(kind)
    if checker is None:
        print(f"FAIL: no regression checker for bench kind '{kind}' "
              f"(known: {sorted(CHECKERS)})")
        return 1
    failures, matched = checker(candidate, reference, tolerance, deterministic_only)
    if matched == 0:
        print("FAIL: no candidate cell matched the reference — gate checked nothing")
        return 1
    for failure in failures:
        print(f"FAIL {failure}")
    return 1 if failures else 0


def inject_regression(candidate, deterministic_only):
    """A synthetic 2x regression in whatever this kind gates hardest on."""
    regressed = copy.deepcopy(candidate)
    kind = regressed.get("bench")
    for row in regressed["results"]:
        if kind == "update_latency" and deterministic_only:
            row["adjustments_per_update"] *= 2.0
        elif kind == "update_latency":
            row["updates_per_sec"] /= 2.0
        elif kind == "distributed_cost":
            row["graceful"]["mean_broadcasts"] *= 2.0
        elif kind == "skew":
            # Doubling the abrupt-delete broadcasts trips both the envelope
            # intrinsic and the deterministic reference band (hub-targeting
            # cells sit near the envelope already).
            row["abrupt_node_delete"]["mean_broadcasts"] = \
                row["abrupt_node_delete"]["mean_broadcasts"] * 2.0 + 1.0
        elif kind == "snapshot":
            # A 2x-slower warm start halves the interleaved speedup too, so
            # the injection trips the ratio band even under
            # --deterministic-only. The borrowed ratio is injected the same
            # way so the zero-copy gate is exercised alongside.
            row["engine_warm_s"] *= 2.0
            row["warm_speedup"] /= 2.0
            if "borrow_speedup" in row:
                row["borrow_open_s"] *= 2.0
                row["borrow_speedup"] /= 2.0
            if "v3_warm_ratio" in row:
                # Past the intrinsic noise bar regardless of the base times
                # (engine_warm_s was just doubled above, so quadruple-plus-1
                # keeps the v3 overhead decisively over the 10% + 100us bar).
                row["engine_warm_v3_s"] = row["engine_warm_v3_s"] * 4.0 + 1.0
                row["v3_warm_ratio"] = row["v3_warm_ratio"] * 2.0 + 1.0
        elif kind == "oom":
            # The gate's core claim is the loaded/failed split — flip it.
            if row["mode"] == "materialized":
                row["loaded"] = True
        elif kind == "recovery" and deterministic_only:
            row["wal_amplification"] *= 2.0
        elif kind == "recovery":
            row["rto_s"] *= 2.0
        elif kind == "replication" and deterministic_only:
            row["shipped_bytes"] *= 2
        elif kind == "replication":
            row["failover_rto_s"] *= 2.0
    return regressed


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("candidates", nargs="+",
                        help="fresh bench JSON(s); several runs of the same "
                             "bench are folded per-cell (best throughput)")
    parser.add_argument("--ref", required=True,
                        help="committed BENCH_*.json baseline")
    parser.add_argument("--tolerance", type=float, default=THROUGHPUT_TOLERANCE,
                        help="allowed fractional throughput drop (default %(default)s)")
    parser.add_argument("--deterministic-only", action="store_true",
                        help="skip the absolute-throughput band (for runs on a "
                             "machine class the reference does not represent, "
                             "e.g. the scalar-FlatSet CI leg)")
    parser.add_argument("--self-test", action="store_true",
                        help="also verify the gate catches an injected 2x regression")
    args = parser.parse_args()

    loaded = []
    for path in args.candidates:
        with open(path) as f:
            loaded.append(json.load(f))
    candidate = merge_best(loaded)
    with open(args.ref) as f:
        reference = json.load(f)

    status = run_gate(candidate, reference, args.tolerance,
                      args.deterministic_only)
    if status != 0:
        return status

    if args.self_test:
        # The skew thin-cell note must be one line per RUN, not one per
        # cell — assert the seam directly so a regression back to per-cell
        # printing (or a silent swallow) fails the self-test.
        print("--- self-test: skew thin-cell note prints once per run ---")
        if skew_thin_cell_note([]) is not None:
            print("FAIL: thin-cell note emitted for an empty run")
            return 1
        note = skew_thin_cell_note([(("ba", "hub_kill", 1000, 5000), 12),
                                    (("ba", "flash", 1000, 5000), 3)])
        if note is None or note.count("note") != 1 or "2 cell(s)" not in note:
            print(f"FAIL: thin-cell note is not a single summary line: {note!r}")
            return 1
        print(f"self-test OK: {note}")
        # Gate the injected copy against the *candidate*, not the committed
        # reference: same-machine numbers, so a 2x injection trips the band
        # by construction on any hardware.
        print("--- self-test: injecting a synthetic 2x regression ---")
        regressed = inject_regression(candidate, args.deterministic_only)
        if run_gate(regressed, candidate, args.tolerance,
                    args.deterministic_only) == 0:
            print("FAIL: gate did not catch the injected 2x regression")
            return 1
        print("self-test OK: injected regression was caught")
    return 0


if __name__ == "__main__":
    sys.exit(main())
