#!/usr/bin/env python3
"""Structural validator for the repo's BENCH_*.json files.

Single source of truth for "is this bench output well-formed?" — CI runs it
on every smoke-run artifact (replacing the old inline heredoc in ci.yml),
and the bench binaries' --validate flag enforces the same rules in-process
on their result rows before the JSON is written (see the validate()
functions in bench/bench_*.cpp, which mirror the per-kind checks here).

Validation is shape + sanity only (fields present, counts positive, metrics
non-negative and finite, percentiles ordered); regression *gating* against
committed baselines is scripts/check_bench.py's job.

Usage: validate_bench.py FILE [FILE...]        exits non-zero on the first
malformed file, printing what failed.
"""

import json
import math
import sys


class Malformed(Exception):
    pass


def require(cond, what):
    if not cond:
        raise Malformed(what)


def finite(x):
    return isinstance(x, (int, float)) and math.isfinite(x)


def require_metric(row, key, lo=0.0):
    require(key in row, f"missing field '{key}' in {row}")
    require(finite(row[key]) and row[key] >= lo, f"bad '{key}' in {row}")


def validate_update_latency(data):
    rows = data["results"]
    require(rows, "no result rows")
    for row in rows:
        require(row.get("workload") in ("insert", "delete", "churn"),
                f"unknown workload in {row}")
        require_metric(row, "n", lo=2)
        require_metric(row, "ops", lo=1)
        require_metric(row, "seconds")
        require_metric(row, "updates_per_sec", lo=1)
        for key in ("ns_p50", "ns_p95", "ns_p99", "ns_max"):
            require_metric(row, key)
        require(row["ns_p50"] <= row["ns_p95"] <= row["ns_p99"] <= row["ns_max"],
                f"latency percentiles out of order in {row}")
        require_metric(row, "adjustments_per_update")


def validate_batch_throughput(data):
    rows = data["results"]
    require(rows, "no result rows")
    for row in rows:
        require(row.get("engine") in ("serial", "sharded"), f"unknown engine in {row}")
        require_metric(row, "n", lo=2)
        require_metric(row, "batch_size", lo=1)
        require_metric(row, "ops", lo=1)
        require_metric(row, "batches", lo=1)
        require_metric(row, "updates_per_sec", lo=1)
        require_metric(row, "adjustments_per_op")


def validate_distributed_cost(data):
    rows = data["results"]
    require(rows, "no result rows")
    for row in rows:
        require_metric(row, "ops", lo=1)
        for metric in ("rounds", "broadcasts", "messages", "bits", "adjustments"):
            require(metric in row, f"missing metric '{metric}' in {row}")
            summary = row[metric]
            for key in ("mean", "p50", "p95", "p99", "max"):
                require_metric(summary, key)
        require(row["graceful"]["count"] > 0, f"no graceful changes in {row}")
        for bucket in ("graceful", "node_insert", "abrupt_node_delete"):
            require(bucket in row, f"missing bucket '{bucket}' in {row}")
            for key, value in row[bucket].items():
                require(finite(value) and value >= 0,
                        f"bad {bucket}.{key} in {row}")


def validate_skew(data):
    rows = data["results"]
    require(rows, "no result rows")
    for row in rows:
        require(row.get("graph") in ("ba", "chung-lu", "planted", "uniform"),
                f"unknown graph distribution in {row}")
        require(row.get("policy") in ("hub-kill", "burst-mute", "flash-crowd",
                                      "churn"),
                f"unknown churn policy in {row}")
        require_metric(row, "n", lo=2)
        require_metric(row, "ops", lo=1)
        require(row.get("verified") is True,
                f"cell not oracle-verified in {row} — a committed skew cell "
                f"must have run with --verify")
        for metric in ("rounds", "broadcasts", "messages", "bits", "adjustments"):
            require(metric in row, f"missing metric '{metric}' in {row}")
            summary = row[metric]
            for key in ("mean", "p50", "p95", "p99", "max"):
                require_metric(summary, key)
        total = 0
        for bucket in ("graceful", "node_insert", "abrupt_node_delete"):
            require(bucket in row, f"missing bucket '{bucket}' in {row}")
            for key, value in row[bucket].items():
                require(finite(value) and value >= 0,
                        f"bad {bucket}.{key} in {row}")
            total += row[bucket]["count"]
        # Pure-adversarial policies may skip whole buckets, but every op
        # must land in one of them.
        require(total == row["ops"], f"bucket counts do not sum to ops in {row}")
        tail = row.get("degree_tail")
        require(isinstance(tail, dict), f"missing degree_tail in {row}")
        for key in ("p50", "p90", "p99", "max", "spilled_fraction",
                    "tail_exponent"):
            require_metric(tail, key)
        require(tail["p50"] <= tail["p90"] <= tail["p99"] <= tail["max"],
                f"degree_tail percentiles out of order in {row}")
        require(tail["spilled_fraction"] <= 1.0,
                f"spilled_fraction above 1 in {row}")
        require_metric(row, "shard_skew", lo=1.0)


def validate_snapshot(data):
    rows = data["results"]
    require(rows, "no result rows")
    for row in rows:
        require_metric(row, "n", lo=2)
        require_metric(row, "edges", lo=1)
        require_metric(row, "snapshot_bytes", lo=1)
        require_metric(row, "trace_bytes", lo=1)
        for key in ("rebuild_s", "rebuild_tuned_s", "save_s", "load_s",
                    "engine_cold_s", "engine_warm_s"):
            require(row[key] > 0 and finite(row[key]), f"bad '{key}' in {row}")
        require_metric(row, "open_s")
        require(row["speedup_vs_rebuild"] > 0, f"bad speedup in {row}")
        require(row["warm_speedup"] > 0, f"bad warm_speedup in {row}")
        for key in ("borrow_open_s", "borrow_first_op_s", "borrow_speedup"):
            require(row[key] > 0 and finite(row[key]), f"bad '{key}' in {row}")
        require(row["borrow_open_s"] < row["load_s"],
                f"borrowed open not faster than materialized load in {row} — "
                f"the zero-copy path lost to the copy")


def validate_recovery(data):
    rows = data["results"]
    require(rows, "no result rows")
    for row in rows:
        require_metric(row, "interval")
        require_metric(row, "n", lo=2)
        require_metric(row, "ops", lo=1)
        require(row["ingest_s"] > 0 and finite(row["ingest_s"]),
                f"bad 'ingest_s' in {row}")
        require_metric(row, "ingest_ops_per_sec", lo=1)
        require_metric(row, "wal_bytes", lo=1)
        require_metric(row, "checkpoint_bytes")
        require_metric(row, "checkpoints")
        require_metric(row, "payload_bytes", lo=1)
        require(row["wal_amplification"] >= 1.0,
                f"wal_amplification below 1 in {row} — framing cannot shrink ops")
        require_metric(row, "tail_ops")
        require(row["tail_ops"] <= row["ops"], f"tail_ops exceeds ops in {row}")
        require(row["rto_s"] > 0 and finite(row["rto_s"]), f"bad 'rto_s' in {row}")
        for key in ("open_s", "load_s", "warm_s", "replay_s"):
            require_metric(row, key)
        require(row["open_s"] + row["load_s"] + row["warm_s"] + row["replay_s"]
                <= row["rto_s"],
                f"RTO breakdown exceeds rto_s in {row}")
        require(isinstance(row.get("borrowed"), bool),
                f"missing/odd 'borrowed' flag in {row}")


def validate_replication(data):
    rows = data["results"]
    require(rows, "no result rows")
    for row in rows:
        require(row.get("policy") in ("everyop", "everybatch", "interval"),
                f"unknown fsync policy in {row}")
        require_metric(row, "n", lo=2)
        require_metric(row, "ops", lo=1)
        require(row["ingest_s"] > 0 and finite(row["ingest_s"]),
                f"bad 'ingest_s' in {row}")
        require_metric(row, "ingest_ops_per_sec", lo=1)
        require_metric(row, "wal_bytes", lo=1)
        require_metric(row, "shipped_bytes", lo=1)
        require(row["shipped_bytes"] >= row["wal_bytes"],
                f"shipped_bytes below wal_bytes in {row} — the follower "
                f"cannot hold the full log with fewer bytes than the leader wrote")
        require_metric(row, "shipments", lo=1)
        require_metric(row, "applied_ops", lo=1)
        require(row["applied_ops"] == row["ops"],
                f"applied_ops != ops in {row} — follower lost operations")
        require(row["promoted_lsn"] == row["ops"],
                f"promoted_lsn != ops in {row} — promotion lost the tail")
        require_metric(row, "mean_lag_ops")
        require_metric(row, "max_lag_ops")
        require(row["mean_lag_ops"] <= row["max_lag_ops"],
                f"mean lag exceeds max lag in {row}")
        if row["policy"] in ("everyop", "everybatch"):
            require(row["max_lag_ops"] == 0,
                    f"synchronous policy reports nonzero lag in {row}")
        for key in ("catchup_s", "failover_rto_s"):
            require_metric(row, key)


def validate_oom(data):
    rows = data["results"]
    require(rows, "no result rows")
    config = data.get("config", {})
    for key in ("slack_bytes", "cap_bytes", "snapshot_bytes", "edges"):
        require_metric(config, key, lo=1)
    require(config["slack_bytes"] < config["snapshot_bytes"],
            "heap slack is not below the snapshot — the cap proves nothing")
    modes = {row.get("mode") for row in rows}
    require(modes == {"materialized", "borrowed"},
            f"expected one materialized and one borrowed row, got {modes}")
    for row in rows:
        require(isinstance(row.get("loaded"), bool), f"bad 'loaded' in {row}")
        require_metric(row, "open_s")
        if row["mode"] == "borrowed":
            for key in ("query_ops_per_sec", "churn_ops_per_sec"):
                require_metric(row, key)
            require_metric(row, "resident_bytes")
            require_metric(row, "mapped_bytes", lo=1)
            require(row["resident_bytes"] <= row["mapped_bytes"],
                    f"resident exceeds mapped in {row}")
            require_metric(row, "vm_data_bytes")


VALIDATORS = {
    "update_latency": validate_update_latency,
    "batch_throughput": validate_batch_throughput,
    "distributed_cost": validate_distributed_cost,
    "skew": validate_skew,
    "snapshot": validate_snapshot,
    "recovery": validate_recovery,
    "replication": validate_replication,
    "oom": validate_oom,
}


def validate_file(path):
    with open(path) as f:
        data = json.load(f)
    kind = data.get("bench")
    require(kind is not None, "missing top-level 'bench' field")
    validator = VALIDATORS.get(kind)
    if validator is None:
        # Unknown kinds (e.g. theorem7/corollary6 baselines) get the generic
        # check: a non-empty results array of objects.
        rows = data.get("results")
        require(isinstance(rows, list) and rows, "no result rows")
        require(all(isinstance(r, dict) for r in rows), "non-object result row")
    else:
        validator(data)
    return kind or "generic", len(data["results"])


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    for path in argv[1:]:
        try:
            kind, count = validate_file(path)
        except Malformed as e:
            print(f"FAIL {path}: {e}")
            return 1
        except (OSError, json.JSONDecodeError, KeyError, TypeError) as e:
            print(f"FAIL {path}: {e!r}")
            return 1
        print(f"OK   {path}: {count} {kind} rows")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
