// E13 — engineering ablations called out in DESIGN.md.
//
// Table 1: literal template (Algorithm 1 with level re-updates) vs cascade
//   engine (each affected node finalized once): identical outputs, different
//   work — Σ|S_i| vs nodes evaluated — and wall-clock per update.
// Table 2: the §6 discussion — sequential per-update work scales with the
//   average degree (the O(Δ) neighbor-notification term), while adjustments
//   stay ~1.
// Table 3: derived-structure overhead per G-change: direct MIS vs line-graph
//   matching vs clique-expansion coloring vs direct greedy coloring.
#include <chrono>
#include <iostream>

#include "core/batch.hpp"
#include "core/cascade_engine.hpp"
#include "core/template_engine.hpp"
#include "derived/dynamic_coloring.hpp"
#include "derived/dynamic_matching.hpp"
#include "derived/greedy_coloring.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace dmis;
using util::OnlineStats;

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto updates = static_cast<int>(cli.flag_int("updates", 400, "changes per row"));
  cli.finish();

  std::cout << "# E13a — template (literal Algorithm 1) vs cascade engine\n";
  util::Table ab({"n", "engine", "E[work]/update", "E[adj]/update", "µs/update"});
  for (const graph::NodeId n : {200U, 800U, 3200U}) {
    util::Rng rng(n);
    const auto g = graph::random_avg_degree(n, 8.0, rng);

    std::vector<std::pair<graph::NodeId, graph::NodeId>> toggles;
    util::Rng toggle_rng(n * 3 + 1);
    while (toggles.size() < static_cast<std::size_t>(updates)) {
      const auto u = static_cast<graph::NodeId>(toggle_rng.below(n));
      const auto v = static_cast<graph::NodeId>(toggle_rng.below(n));
      if (u != v) toggles.emplace_back(u, v);
    }

    {
      core::TemplateEngine engine(g, 42);
      OnlineStats work;
      OnlineStats adj;
      const double start = now_us();
      for (const auto& [u, v] : toggles) {
        const auto rep = engine.graph().has_edge(u, v) ? engine.remove_edge(u, v)
                                                       : engine.add_edge(u, v);
        work.add(static_cast<double>(rep.s_memberships));
        adj.add(static_cast<double>(rep.adjustments));
      }
      const double elapsed = now_us() - start;
      ab.row()
          .cell(static_cast<std::uint64_t>(n))
          .cell("template (Σ|S_i| updates)")
          .cell(work.mean(), 3)
          .cell(adj.mean(), 3)
          .cell(elapsed / updates, 2);
    }
    {
      core::CascadeEngine engine(g, 42);
      OnlineStats work;
      OnlineStats adj;
      const double start = now_us();
      for (const auto& [u, v] : toggles) {
        const auto rep = engine.graph().has_edge(u, v) ? engine.remove_edge(u, v)
                                                       : engine.add_edge(u, v);
        work.add(static_cast<double>(rep.evaluated));
        adj.add(static_cast<double>(rep.adjustments));
      }
      const double elapsed = now_us() - start;
      ab.row()
          .cell(static_cast<std::uint64_t>(n))
          .cell("cascade (nodes evaluated)")
          .cell(work.mean(), 3)
          .cell(adj.mean(), 3)
          .cell(elapsed / updates, 2);
    }
  }
  ab.print(std::cout);

  std::cout << "\n# E13b — §6: sequential update work vs average degree "
               "(adjustments stay ~1, work pays the O(Δ) term)\n";
  util::Table deg_table({"avg degree", "E[evaluated]/update", "E[edges scanned]",
                         "E[adjustments]"});
  const graph::NodeId n = 2000;
  for (const double deg : {2.0, 8.0, 32.0, 128.0}) {
    util::Rng rng(static_cast<std::uint64_t>(deg) * 7 + 5);
    const auto g = graph::random_avg_degree(n, deg, rng);
    core::CascadeEngine engine(g, 4242);
    OnlineStats evaluated;
    OnlineStats scanned;
    OnlineStats adj;
    util::Rng toggle_rng(99);
    for (int step = 0; step < updates; ++step) {
      const auto u = static_cast<graph::NodeId>(toggle_rng.below(n));
      const auto v = static_cast<graph::NodeId>(toggle_rng.below(n));
      if (u == v) continue;
      const auto rep = engine.graph().has_edge(u, v) ? engine.remove_edge(u, v)
                                                     : engine.add_edge(u, v);
      evaluated.add(static_cast<double>(rep.evaluated));
      // Each evaluation scans the node's adjacency: ~deg edges.
      scanned.add(static_cast<double>(rep.evaluated) * deg);
      adj.add(static_cast<double>(rep.adjustments));
    }
    deg_table.row()
        .cell(deg, 0)
        .cell(evaluated.mean(), 3)
        .cell(scanned.mean(), 1)
        .cell(adj.mean(), 3);
  }
  deg_table.print(std::cout);

  std::cout << "\n# E13c — derived structures: MIS adjustments per G edge-toggle\n";
  util::Table derived_table({"structure", "E[adjustments]/change", "notes"});
  {
    const graph::NodeId dn = 300;
    util::Rng rng(5);
    OnlineStats direct;
    OnlineStats matching_adj;
    OnlineStats coloring_adj;
    OnlineStats greedy_color_adj;

    core::CascadeEngine mis_engine(7);
    derived::DynamicMatching matching(7);
    derived::DynamicColoring coloring(24, 7);
    derived::GreedyColoringEngine greedy(7);
    for (graph::NodeId v = 0; v < dn; ++v) {
      (void)mis_engine.add_node();
      (void)matching.add_node();
      (void)coloring.add_node();
      (void)greedy.add_node();
    }
    for (int step = 0; step < updates; ++step) {
      const auto u = static_cast<graph::NodeId>(rng.below(dn));
      const auto v = static_cast<graph::NodeId>(rng.below(dn));
      if (u == v) continue;
      if (mis_engine.graph().has_edge(u, v)) {
        direct.add(static_cast<double>(mis_engine.remove_edge(u, v).adjustments));
        matching.remove_edge(u, v);
        coloring.remove_edge(u, v);
        greedy_color_adj.add(
            static_cast<double>(greedy.remove_edge(u, v).adjustments));
      } else {
        if (mis_engine.graph().degree(u) + 2 >= 24 ||
            mis_engine.graph().degree(v) + 2 >= 24) {
          continue;  // coloring palette guard
        }
        direct.add(static_cast<double>(mis_engine.add_edge(u, v).adjustments));
        matching.add_edge(u, v);
        coloring.add_edge(u, v);
        greedy_color_adj.add(static_cast<double>(greedy.add_edge(u, v).adjustments));
      }
      matching_adj.add(static_cast<double>(matching.last_adjustments()));
      coloring_adj.add(static_cast<double>(coloring.last_adjustments()));
    }
    derived_table.row().cell("direct MIS").cell(direct.mean(), 3).cell("Theorem 1");
    derived_table.row()
        .cell("matching (line graph)")
        .cell(matching_adj.mean(), 3)
        .cell("1 L(G)-node op per edge op");
    derived_table.row()
        .cell("coloring (clique expansion)")
        .cell(coloring_adj.mean(), 3)
        .cell("palette ops per edge op (§5: up to ~2Δ)");
    derived_table.row()
        .cell("coloring (direct random greedy)")
        .cell(greedy_color_adj.mean(), 3)
        .cell("ω(1) worst case, open problem in §5");
  }
  derived_table.print(std::cout);

  std::cout << "\n# E13d — §6 open question: batches of simultaneous changes "
               "(one repair pass) vs one-at-a-time\n";
  util::Table batch_table({"batch size k", "E[adj] sequential", "E[adj] batched",
                           "ratio", "E[evaluated] batched"});
  {
    const graph::NodeId bn = 500;
    for (const int k : {1, 4, 16, 64}) {
      OnlineStats seq_adj;
      OnlineStats bat_adj;
      OnlineStats bat_eval;
      for (std::uint64_t seed = 0; seed < 60; ++seed) {
        util::Rng rng(seed * 7 + static_cast<std::uint64_t>(k));
        const auto g = graph::random_avg_degree(bn, 6.0, rng);

        // Draw k random edge toggles (consistent for both strategies).
        core::Batch ops;
        graph::DynamicGraph mirror = g;
        while (ops.size() < static_cast<std::size_t>(k)) {
          const auto u = static_cast<graph::NodeId>(rng.below(bn));
          const auto v = static_cast<graph::NodeId>(rng.below(bn));
          if (u == v) continue;
          if (mirror.has_edge(u, v)) {
            mirror.remove_edge(u, v);
            ops.remove_edge(u, v);
          } else {
            mirror.add_edge(u, v);
            ops.add_edge(u, v);
          }
        }

        core::CascadeEngine sequential(g, seed);
        std::uint64_t seq_total = 0;
        for (const auto& op : ops.ops()) {
          if (op.kind == core::BatchOp::Kind::kAddEdge)
            seq_total += sequential.add_edge(op.u, op.v).adjustments;
          else seq_total += sequential.remove_edge(op.u, op.v).adjustments;
        }

        core::CascadeEngine batched(g, seed);
        const auto result = core::apply_batch(batched, ops);
        seq_adj.add(static_cast<double>(seq_total));
        bat_adj.add(static_cast<double>(result.report.adjustments));
        bat_eval.add(static_cast<double>(result.report.evaluated));
      }
      batch_table.row()
          .cell(static_cast<std::int64_t>(k))
          .cell(seq_adj.mean(), 3)
          .cell(bat_adj.mean(), 3)
          .cell(seq_adj.mean() > 0 ? bat_adj.mean() / seq_adj.mean() : 1.0, 3)
          .cell(bat_eval.mean(), 3);
    }
  }
  batch_table.print(std::cout);
  std::cout << "\n(the batch lands on the same structure with ≤ the sequential "
               "adjustments: intermediate configurations are never "
               "materialized — an empirical data point for §6's multi-change "
               "open question)\n";
  return 0;
}
