// E5 — correlation clustering 3-approximation (Ailon et al. via random
// greedy, §1.1).
//
// Table 1: small graphs where OPT is exactly computable — the empirical
//   E[pivot cost] / OPT ratio must be ≤ 3 (usually ≈ 1.1–1.6).
// Table 2: dynamic maintenance at scale — the incrementally maintained
//   clustering equals the from-scratch pivot clustering (history
//   independence of the composition) and reassignments per change are O(1)
//   on average.
#include <iostream>

#include "clustering/brute_force.hpp"
#include "clustering/correlation.hpp"
#include "clustering/dynamic_clustering.hpp"
#include "core/greedy_mis.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace dmis;
using util::OnlineStats;

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto trials = static_cast<int>(cli.flag_int("trials", 400, "orders per graph"));
  const auto instances =
      static_cast<int>(cli.flag_int("instances", 5, "random graphs per density"));
  cli.finish();

  std::cout << "# E5 — random-greedy pivot clustering vs exact OPT "
               "(paper: E[cost] ≤ 3·OPT)\n";
  util::Table table({"n", "p", "instance", "OPT", "E[cost] ± 95%", "ratio"});

  for (const double p : {0.2, 0.4, 0.6}) {
    for (int inst = 0; inst < instances; ++inst) {
      util::Rng rng(static_cast<std::uint64_t>(p * 100) * 31 +
                    static_cast<std::uint64_t>(inst));
      const graph::NodeId n = 10;
      const auto g = graph::erdos_renyi(n, p, rng);
      const auto opt = clustering::optimal_correlation_cost(g);

      OnlineStats cost;
      for (int t = 0; t < trials; ++t) {
        core::PriorityMap pri(5'000 + static_cast<std::uint64_t>(t) * 13);
        const auto mis = core::greedy_mis(g, pri);
        cost.add(static_cast<double>(
            clustering::correlation_cost(g, clustering::pivot_assignment(g, pri, mis))));
      }
      table.row()
          .cell(static_cast<std::uint64_t>(n))
          .cell(p, 1)
          .cell(static_cast<std::int64_t>(inst))
          .cell(opt)
          .cell_pm(cost.mean(), cost.ci95())
          .cell(opt == 0 ? 0.0 : cost.mean() / static_cast<double>(opt), 3);
    }
  }
  table.print(std::cout);
  std::cout << "\n(every ratio must be ≤ 3; OPT = 0 rows must have cost ≈ 0)\n";

  std::cout << "\n# E5b — dynamic maintenance: reassignments per change at scale\n";
  util::Table dyn({"n", "changes", "E[reassigned]/change", "E[MIS adj]/change",
                   "final cost", "fresh-recompute cost"});
  for (const graph::NodeId n : {200U, 800U}) {
    clustering::DynamicClustering dc(42 + n);
    std::vector<graph::NodeId> live;
    for (graph::NodeId v = 0; v < n; ++v) live.push_back(dc.add_node());
    util::Rng rng(n * 3);
    // Warm up to average degree ~6, then churn.
    for (graph::NodeId e = 0; e < 3 * n; ++e) {
      const auto u = live[rng.below(live.size())];
      const auto v = live[rng.below(live.size())];
      if (u != v && !dc.graph().has_edge(u, v)) dc.add_edge(u, v);
    }
    OnlineStats reassigned;
    OnlineStats mis_adjustments;
    const int changes = 2000;
    for (int step = 0; step < changes; ++step) {
      const auto u = live[rng.below(live.size())];
      const auto v = live[rng.below(live.size())];
      if (u == v) continue;
      if (dc.graph().has_edge(u, v)) dc.remove_edge(u, v);
      else dc.add_edge(u, v);
      reassigned.add(static_cast<double>(dc.last_reassigned()));
      mis_adjustments.add(static_cast<double>(dc.mis().last_report().adjustments));
    }
    dc.verify();  // incremental assignment == fresh pivot assignment
    const auto fresh_cost = clustering::correlation_cost(
        dc.graph(),
        clustering::pivot_assignment(dc.graph(), dc.mis().engine().priorities(),
                                     dc.mis().engine().membership()));
    dyn.row()
        .cell(static_cast<std::uint64_t>(n))
        .cell(static_cast<std::int64_t>(changes))
        .cell(reassigned.mean(), 3)
        .cell(mis_adjustments.mean(), 3)
        .cell(dc.cost())
        .cell(fresh_cost);
  }
  dyn.print(std::cout);
  std::cout << "\n(final cost must equal the fresh-recompute cost: the dynamic "
               "clustering is exactly the pivot clustering of the current graph)\n";
  return 0;
}
