// E12 — wall-clock throughput of the sequential engines (google-benchmark).
//
// Not a paper claim — an engineering datapoint for adopters: updates/sec of
// the cascade engine across graph sizes and densities, the literal-template
// comparison, and the derived structures' overhead.
#include <benchmark/benchmark.h>

#include "core/cascade_engine.hpp"
#include "core/greedy_mis.hpp"
#include "core/template_engine.hpp"
#include "derived/dynamic_matching.hpp"
#include "derived/greedy_coloring.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace {

using namespace dmis;

graph::DynamicGraph make_graph(graph::NodeId n, double deg) {
  util::Rng rng(n * 31 + static_cast<std::uint64_t>(deg));
  return graph::random_avg_degree(n, deg, rng);
}

void BM_CascadeEdgeToggle(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const double deg = static_cast<double>(state.range(1));
  core::CascadeEngine engine(make_graph(n, deg), 7);
  util::Rng rng(99);
  for (auto _ : state) {
    const auto u = static_cast<graph::NodeId>(rng.below(n));
    const auto v = static_cast<graph::NodeId>(rng.below(n));
    if (u == v) continue;
    if (engine.graph().has_edge(u, v)) {
      benchmark::DoNotOptimize(engine.remove_edge(u, v));
    } else {
      benchmark::DoNotOptimize(engine.add_edge(u, v));
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CascadeEdgeToggle)
    ->Args({1'000, 8})
    ->Args({10'000, 8})
    ->Args({100'000, 8})
    ->Args({10'000, 64});

void BM_TemplateEdgeToggle(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  core::TemplateEngine engine(make_graph(n, 8.0), 7);
  util::Rng rng(99);
  for (auto _ : state) {
    const auto u = static_cast<graph::NodeId>(rng.below(n));
    const auto v = static_cast<graph::NodeId>(rng.below(n));
    if (u == v) continue;
    if (engine.graph().has_edge(u, v)) {
      benchmark::DoNotOptimize(engine.remove_edge(u, v));
    } else {
      benchmark::DoNotOptimize(engine.add_edge(u, v));
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TemplateEdgeToggle)->Arg(1'000)->Arg(10'000);

void BM_NodeChurn(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  core::CascadeEngine engine(make_graph(n, 8.0), 11);
  util::Rng rng(101);
  std::vector<graph::NodeId> live = engine.graph().nodes();
  for (auto _ : state) {
    // Delete a random node, insert a replacement with ~8 attachments.
    const std::size_t index = rng.below(live.size());
    engine.remove_node(live[index]);
    live[index] = live.back();
    live.pop_back();
    std::vector<graph::NodeId> attach;
    for (int i = 0; i < 8; ++i) attach.push_back(live[rng.below(live.size())]);
    std::sort(attach.begin(), attach.end());
    attach.erase(std::unique(attach.begin(), attach.end()), attach.end());
    live.push_back(engine.add_node(attach));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NodeChurn)->Arg(1'000)->Arg(10'000);

void BM_MatchingEdgeToggle(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  derived::DynamicMatching matching(13);
  for (graph::NodeId v = 0; v < n; ++v) (void)matching.add_node();
  util::Rng rng(7);
  // Warm up with ~4n edges.
  for (graph::NodeId e = 0; e < 4 * n; ++e) {
    const auto u = static_cast<graph::NodeId>(rng.below(n));
    const auto v = static_cast<graph::NodeId>(rng.below(n));
    if (u != v && !matching.graph().has_edge(u, v)) matching.add_edge(u, v);
  }
  for (auto _ : state) {
    const auto u = static_cast<graph::NodeId>(rng.below(n));
    const auto v = static_cast<graph::NodeId>(rng.below(n));
    if (u == v) continue;
    if (matching.graph().has_edge(u, v)) matching.remove_edge(u, v);
    else matching.add_edge(u, v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MatchingEdgeToggle)->Arg(1'000)->Arg(10'000);

void BM_GreedyColoringEdgeToggle(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  derived::GreedyColoringEngine engine(make_graph(n, 8.0), 17);
  util::Rng rng(3);
  for (auto _ : state) {
    const auto u = static_cast<graph::NodeId>(rng.below(n));
    const auto v = static_cast<graph::NodeId>(rng.below(n));
    if (u == v) continue;
    if (engine.graph().has_edge(u, v)) {
      benchmark::DoNotOptimize(engine.remove_edge(u, v));
    } else {
      benchmark::DoNotOptimize(engine.add_edge(u, v));
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GreedyColoringEdgeToggle)->Arg(1'000)->Arg(10'000);

void BM_FromScratchGreedy(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto g = make_graph(n, 8.0);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    core::PriorityMap pri(++seed);
    benchmark::DoNotOptimize(core::greedy_mis(g, pri));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FromScratchGreedy)->Arg(1'000)->Arg(10'000);

}  // namespace

BENCHMARK_MAIN();
