// bench_recovery — measures what the crash-safe service actually charges
// for durability, and what checkpoint cadence buys back at recovery time.
//
// One cell per checkpoint interval (same workload, same n): ingest a
// deterministic churn stream through MisService with the given
// checkpoint_interval_ops and the serving fsync policy (every batch), then
// drop the service WITHOUT close() — the directory is left crash-shaped,
// unsealed WAL tail and all — and time RecoveryManager::recover over it
// --reps times (min reported, with the open/warm/replay breakdown of the
// fastest rep). Reported per cell:
//
//   ingest_ops_per_sec   ingest throughput including WAL append + fsync per
//                        batch + auto checkpoints — the durability tax on
//                        the engine's raw update rate,
//   wal_bytes / checkpoint_bytes / wal_amplification
//                        bytes the filesystem saw vs. the logical op payload
//                        (20 B/op + 4 B/neighbor slot): the write
//                        amplification of framing + checkpoints,
//   tail_ops             ops past the last checkpoint — what recovery must
//                        replay; bounded by interval + batch slack (the gate
//                        checks this intrinsically),
//   rto_s = open_s + load_s + warm_s + replay_s
//                        time from "directory on disk" to "engine serving":
//                        checkpoint open+verify, graph borrow (or
//                        materialized load with --no-borrow), warm start,
//                        WAL tail replay. Shrinking the interval shrinks
//                        tail_ops and
//                        with it the replay term — the recorded baseline
//                        demonstrates exactly that trade, and
//                        scripts/check_bench.py gates it.
//
// Every recovered engine is compared against the live pre-drop engine
// (membership + RNG state) outside the timed region, so a cell that exists
// has been correctness-checked.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/batch.hpp"
#include "core/cascade_engine.hpp"
#include "graph/generators.hpp"
#include "service/recovery.hpp"
#include "service/service.hpp"
#include "util/rng.hpp"
#include "workload/batched.hpp"
#include "workload/churn.hpp"
#include "workload/trace.hpp"

namespace {

using namespace dmis;
using graph::NodeId;
using Clock = std::chrono::steady_clock;

struct Result {
  std::uint64_t interval = 0;  // checkpoint_interval_ops; 0 = never
  NodeId n = 0;
  std::uint64_t ops = 0;
  double ingest_s = 0;
  double ingest_ops_per_sec = 0;
  std::uint64_t wal_bytes = 0;
  std::uint64_t checkpoint_bytes = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t payload_bytes = 0;  // logical op payload (20 B/op + arena)
  double wal_amplification = 0;     // wal_bytes / payload_bytes
  std::uint64_t tail_ops = 0;       // replayed on recovery
  double rto_s = 0;                 // min over reps; breakdown from that rep
  double open_s = 0;
  double load_s = 0;
  double warm_s = 0;
  double replay_s = 0;
  bool borrowed = false;
};

std::vector<core::Batch> make_stream(NodeId n, double deg, std::uint64_t seed,
                                     std::uint64_t total_ops, std::size_t ops_per_batch) {
  util::Rng rng(seed);
  graph::DynamicGraph g = graph::random_avg_degree(n, deg, rng);
  const workload::Trace grow = workload::grow_trace(g);
  workload::ChurnConfig config;
  config.p_abrupt = 0.4;
  workload::ChurnGenerator gen(g, config, seed + 1);

  std::vector<core::Batch> out;
  core::Batch current;
  const auto flush = [&] {
    if (!current.empty()) {
      out.push_back(current);
      current.clear();
    }
  };
  std::uint64_t ops = 0;
  for (const workload::GraphOp& op : grow) {
    workload::append_op(current, op);
    ++ops;
    if (current.size() >= ops_per_batch) flush();
  }
  while (ops < total_ops) {
    workload::append_op(current, gen.next());
    ++ops;
    if (current.size() >= ops_per_batch) flush();
  }
  flush();
  return out;
}

/// Logical bytes of the op stream as the WAL defines payload: one 20-byte
/// op record per op plus 4 bytes per add-node neighbor slot. Framing
/// (headers, seals, padding) and checkpoints are amplification on top.
std::uint64_t payload_bytes(const std::vector<core::Batch>& stream) {
  std::uint64_t bytes = 0;
  for (const core::Batch& b : stream) {
    bytes += b.size() * 20ULL;
    for (const core::BatchOp& op : b.ops())
      if (op.kind == core::BatchOp::Kind::kAddNode)
        bytes += b.neighbors_of(op).size() * 4ULL;
  }
  return bytes;
}

Result run_cell(const std::vector<core::Batch>& stream, std::uint64_t interval,
                NodeId n, std::uint64_t seed, int reps, bool borrow,
                const std::filesystem::path& dir) {
  Result r;
  r.interval = interval;
  r.n = n;
  for (const auto& b : stream) r.ops += b.size();
  r.payload_bytes = payload_bytes(stream);

  const std::string cell_dir =
      (dir / ("bench_recovery_" + std::to_string(interval))).string();
  std::filesystem::remove_all(cell_dir);

  service::ServiceConfig config;
  config.dir = cell_dir;
  config.priority_seed = seed;
  config.fsync = service::FsyncPolicy::kEveryBatch;
  config.checkpoint_interval_ops = interval;
  std::string error;
  auto svc = service::MisService::open(config, &error);
  if (!svc.has_value()) {
    std::fprintf(stderr, "service open failed: %s\n", error.c_str());
    std::exit(1);
  }

  const auto t0 = Clock::now();
  for (const core::Batch& batch : stream) {
    if (!svc->apply(batch, &error)) {
      std::fprintf(stderr, "apply failed: %s\n", error.c_str());
      std::exit(1);
    }
  }
  r.ingest_s = std::chrono::duration<double>(Clock::now() - t0).count();
  r.ingest_ops_per_sec = r.ingest_s > 0 ? static_cast<double>(r.ops) / r.ingest_s : 0;
  r.wal_bytes = svc->wal_bytes_appended();
  r.checkpoint_bytes = svc->checkpoint_bytes();
  r.checkpoints = svc->checkpoints_taken();
  r.wal_amplification =
      r.payload_bytes > 0 ? static_cast<double>(r.wal_bytes) / r.payload_bytes : 0;
  r.tail_ops = r.ops - svc->last_checkpoint_lsn();

  // Keep the live end state for the correctness pin, then drop the service
  // without close(): no seal, no final sync beyond the policy's — the
  // directory now looks exactly like the process was shot post-ack.
  const core::Membership want_membership = svc->engine().membership();
  const util::Rng::State want_rng = svc->engine().priorities().rng_state();
  const std::size_t want_mis = svc->engine().mis_size();
  svc.reset();

  std::size_t sink = 0;
  for (int rep = 0; rep < reps; ++rep) {
    service::RecoveryOptions options;
    options.priority_seed = seed;
    options.borrow = borrow;
    service::RecoveryManager manager(cell_dir, options);
    service::RecoveryReport report;
    const auto t_rec = Clock::now();
    auto engine = manager.recover(&report, &error);
    const double rto = std::chrono::duration<double>(Clock::now() - t_rec).count();
    if (!engine.has_value()) {
      std::fprintf(stderr, "recovery failed: %s\n", error.c_str());
      std::exit(1);
    }
    sink += engine->mis_size();
    if (report.recovered_lsn != r.ops || report.replayed_ops != r.tail_ops) {
      std::fprintf(stderr,
                   "recovery bookkeeping mismatch at interval %llu: lsn %llu/%llu, "
                   "tail %llu/%llu\n",
                   static_cast<unsigned long long>(interval),
                   static_cast<unsigned long long>(report.recovered_lsn),
                   static_cast<unsigned long long>(r.ops),
                   static_cast<unsigned long long>(report.replayed_ops),
                   static_cast<unsigned long long>(r.tail_ops));
      std::exit(1);
    }
    // Correctness pin outside the timed region: the recovered engine must
    // be differentially identical to the live one that wrote the log.
    if (engine->mis_size() != want_mis || !(engine->membership() == want_membership) ||
        !(engine->priorities().rng_state() == want_rng)) {
      std::fprintf(stderr, "recovered state mismatch at interval %llu\n",
                   static_cast<unsigned long long>(interval));
      std::exit(1);
    }
    if (rep == 0 || rto < r.rto_s) {
      r.rto_s = rto;
      r.open_s = report.open_s;
      r.load_s = report.load_s;
      r.warm_s = report.warm_s;
      r.replay_s = report.replay_s;
      r.borrowed = report.borrowed;
    }
  }
  if (sink == 0) std::fprintf(stderr, "(empty MIS — suspicious)\n");
  std::filesystem::remove_all(cell_dir);
  return r;
}

bool validate(const std::vector<Result>& results, std::size_t ops_per_batch) {
  // Self-check behind --validate: the rules scripts/validate_bench.py
  // applies to the JSON, plus the intrinsic tail bound the gate enforces.
  if (results.empty()) {
    std::fprintf(stderr, "validate: no results\n");
    return false;
  }
  for (const Result& r : results) {
    const bool ok = r.n >= 2 && r.ops > 0 && r.ingest_s > 0 &&
                    r.ingest_ops_per_sec > 0 && r.wal_bytes > 0 &&
                    r.payload_bytes > 0 && r.wal_amplification > 0 && r.rto_s > 0 &&
                    r.open_s >= 0 && r.load_s >= 0 && r.warm_s >= 0 && r.replay_s >= 0;
    if (!ok) {
      std::fprintf(stderr, "validate: malformed row at interval=%llu\n",
                   static_cast<unsigned long long>(r.interval));
      return false;
    }
    if (r.interval > 0 && r.tail_ops >= r.interval + ops_per_batch) {
      std::fprintf(stderr,
                   "validate: tail_ops %llu breaks the interval %llu + batch bound\n",
                   static_cast<unsigned long long>(r.tail_ops),
                   static_cast<unsigned long long>(r.interval));
      return false;
    }
  }
  return true;
}

bool write_json(const std::string& path, const std::vector<Result>& results, NodeId n,
                double deg, std::uint64_t seed, std::uint64_t ops,
                std::size_t ops_per_batch, int reps, bool borrow) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"recovery\",\n");
  std::fprintf(f,
               "  \"config\": {\"n\": %u, \"deg\": %.1f, \"seed\": %llu, "
               "\"ops\": %llu, \"batch\": %zu, \"reps\": %d, \"fsync\": \"everybatch\", "
               "\"borrow\": %s},\n",
               n, deg, static_cast<unsigned long long>(seed),
               static_cast<unsigned long long>(ops), ops_per_batch, reps,
               borrow ? "true" : "false");
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(f,
                 "    {\"interval\": %llu, \"n\": %u, \"ops\": %llu, "
                 "\"ingest_s\": %.6f, \"ingest_ops_per_sec\": %.0f, "
                 "\"wal_bytes\": %llu, \"checkpoint_bytes\": %llu, "
                 "\"checkpoints\": %llu, \"payload_bytes\": %llu, "
                 "\"wal_amplification\": %.4f, \"tail_ops\": %llu, "
                 "\"rto_s\": %.6f, \"open_s\": %.6f, \"load_s\": %.6f, "
                 "\"warm_s\": %.6f, \"replay_s\": %.6f, \"borrowed\": %s}%s\n",
                 static_cast<unsigned long long>(r.interval), r.n,
                 static_cast<unsigned long long>(r.ops), r.ingest_s,
                 r.ingest_ops_per_sec, static_cast<unsigned long long>(r.wal_bytes),
                 static_cast<unsigned long long>(r.checkpoint_bytes),
                 static_cast<unsigned long long>(r.checkpoints),
                 static_cast<unsigned long long>(r.payload_bytes),
                 r.wal_amplification, static_cast<unsigned long long>(r.tail_ops),
                 r.rto_s, r.open_s, r.load_s, r.warm_s, r.replay_s,
                 r.borrowed ? "true" : "false", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  NodeId n = 1000;
  double deg = 6.0;
  std::uint64_t seed = 42;
  std::uint64_t ops = 120'000;
  std::size_t batch = 32;
  int reps = 3;
  std::vector<std::uint64_t> intervals = {0, 50'000, 10'000, 2'000};
  std::string out = "BENCH_recovery.json";
  std::string dir = std::filesystem::temp_directory_path().string();
  bool validate_flag = false;
  bool borrow = true;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--n") n = static_cast<NodeId>(std::strtoul(next(), nullptr, 10));
    else if (arg == "--deg") deg = std::strtod(next(), nullptr);
    else if (arg == "--seed") seed = std::strtoull(next(), nullptr, 10);
    else if (arg == "--ops") ops = std::strtoull(next(), nullptr, 10);
    else if (arg == "--batch") batch = std::strtoul(next(), nullptr, 10);
    else if (arg == "--reps") reps = static_cast<int>(std::strtol(next(), nullptr, 10));
    else if (arg == "--out") out = next();
    else if (arg == "--dir") dir = next();
    else if (arg == "--validate") validate_flag = true;
    else if (arg == "--no-borrow") borrow = false;
    else if (arg == "--intervals") {
      intervals.clear();
      const char* s = next();
      while (*s != '\0') {
        char* end = nullptr;
        const unsigned long long parsed = std::strtoull(s, &end, 10);
        if (end == s) {
          std::fprintf(stderr,
                       "--intervals wants a comma-separated list of op counts "
                       "(0 = never checkpoint)\n");
          return 2;
        }
        intervals.push_back(parsed);
        s = *end == ',' ? end + 1 : end;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--intervals a,b,c] [--n N] [--deg D] [--ops K] "
                   "[--batch B] [--seed S] [--reps R] [--dir TMP] [--out F] "
                   "[--validate] [--no-borrow]\n",
                   argv[0]);
      return 2;
    }
  }
  if (batch == 0) batch = 1;

  using namespace dmis;
  const auto stream = make_stream(n, deg, seed, ops, batch);

  std::vector<Result> results;
  for (const std::uint64_t interval : intervals) {
    const Result r = run_cell(stream, interval, n, seed, reps, borrow, dir);
    results.push_back(r);
    std::printf("interval=%-8llu ingest=%8.0f ops/s  wal=%-9llu ckpt=%llux%-8llu "
                "amp=%.2fx  tail=%-7llu rto=%.6fs (open %.6f + %s %.6f + warm %.6f "
                "+ replay %.6f)\n",
                static_cast<unsigned long long>(r.interval), r.ingest_ops_per_sec,
                static_cast<unsigned long long>(r.wal_bytes),
                static_cast<unsigned long long>(r.checkpoints),
                static_cast<unsigned long long>(
                    r.checkpoints > 0 ? r.checkpoint_bytes / r.checkpoints : 0),
                r.wal_amplification, static_cast<unsigned long long>(r.tail_ops),
                r.rto_s, r.open_s, r.borrowed ? "borrow" : "load", r.load_s, r.warm_s,
                r.replay_s);
    std::fflush(stdout);
  }
  if (validate_flag && !validate(results, batch)) return 1;
  return write_json(out, results, n, deg, seed, ops, batch, reps, borrow) ? 0 : 1;
}
