// E3 — Theorem 7: the full distributed implementation (Algorithm 2).
//
// Table 1: per change type — expected adjustments, rounds, broadcasts, bits.
//   Paper: 1 adjustment, O(1) rounds for everything; O(1) broadcasts for
//   edge insert/delete (graceful and abrupt), graceful node deletion and
//   unmuting; O(d(v*)) broadcasts for node insertion.
// Table 2: abrupt node deletion — broadcasts vs victim degree and n
//   (Lemma 13: O(min{log n, d(v*)})).
// Table 3: node insertion — broadcasts vs degree (Lemma 10: O(d(v*))).
//
// Besides the printed tables, every row is appended to a machine-readable
// JSON file (default BENCH_theorem7.json, --json to override, empty string
// to disable) so successive PRs can diff the measured constants.
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/dist_mis.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace dmis;
using core::DeletionMode;
using core::DistMis;
using util::OnlineStats;

struct CostRow {
  OnlineStats adjustments;
  OnlineStats rounds;
  OnlineStats broadcasts;
  OnlineStats bits;

  void add(const sim::CostReport& cost) {
    adjustments.add(static_cast<double>(cost.adjustments));
    rounds.add(static_cast<double>(cost.rounds));
    broadcasts.add(static_cast<double>(cost.broadcasts));
    bits.add(static_cast<double>(cost.bits));
  }
};

struct JsonRow {
  std::string table;
  std::string change;
  std::uint64_t n = 0;
  std::uint64_t d = 0;  // controlled degree (tables 2/3); 0 when not swept
  std::uint64_t trials = 0;
  double adjustments = 0, rounds = 0, broadcasts = 0, bits = 0;
};

std::vector<JsonRow> g_json_rows;

void record(const std::string& table, const std::string& change, std::uint64_t n,
            std::uint64_t d, const CostRow& row) {
  g_json_rows.push_back({table, change, n, d, row.broadcasts.count(),
                         row.adjustments.mean(), row.rounds.mean(),
                         row.broadcasts.mean(), row.bits.mean()});
}

bool write_json(const std::string& path) {
  if (path.empty()) return true;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"theorem7\",\n  \"results\": [\n");
  for (std::size_t i = 0; i < g_json_rows.size(); ++i) {
    const JsonRow& r = g_json_rows[i];
    std::fprintf(f,
                 "    {\"table\": \"%s\", \"change\": \"%s\", \"n\": %llu, "
                 "\"d\": %llu, \"trials\": %llu, \"adjustments\": %.4f, "
                 "\"rounds\": %.4f, \"broadcasts\": %.4f, \"bits\": %.2f}%s\n",
                 r.table.c_str(), r.change.c_str(),
                 static_cast<unsigned long long>(r.n),
                 static_cast<unsigned long long>(r.d),
                 static_cast<unsigned long long>(r.trials), r.adjustments, r.rounds,
                 r.broadcasts, r.bits, i + 1 < g_json_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

void emit(util::Table& table, const std::string& label, graph::NodeId n,
          const CostRow& row) {
  record("per_change_type", label, n, 0, row);
  table.row()
      .cell(label)
      .cell(static_cast<std::uint64_t>(n))
      .cell_pm(row.adjustments.mean(), row.adjustments.ci95())
      .cell_pm(row.rounds.mean(), row.rounds.ci95())
      .cell_pm(row.broadcasts.mean(), row.broadcasts.ci95())
      .cell(row.bits.mean(), 1);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto trials = static_cast<int>(cli.flag_int("trials", 120, "trials per row"));
  const auto deg = cli.flag_double("deg", 8.0, "average degree of the base graph");
  const auto json_path = cli.flag_string("json", "BENCH_theorem7.json",
                                         "machine-readable output (empty disables)");
  cli.finish();

  std::cout << "# E3 — Theorem 7: Algorithm 2 costs per change type\n";
  util::Table table({"change", "n", "E[adj] ± 95%", "E[rounds] ± 95%",
                     "E[broadcasts] ± 95%", "E[bits]"});

  for (const graph::NodeId n : {100U, 400U, 1600U}) {
    CostRow rows[7];
    for (int t = 0; t < trials; ++t) {
      util::Rng rng(static_cast<std::uint64_t>(t) * 101 + n);
      const auto g = graph::random_avg_degree(n, deg, rng);
      const std::uint64_t seed = 7'000 + static_cast<std::uint64_t>(t) * 3;

      {  // edge insertion
        DistMis mis(g, seed);
        graph::NodeId u = static_cast<graph::NodeId>(rng.below(n));
        graph::NodeId v = static_cast<graph::NodeId>(rng.below(n));
        if (u == v || g.has_edge(u, v)) {
          u = 0;
          v = 1;
          while (g.has_edge(u, v)) ++v;
        }
        rows[0].add(mis.insert_edge(u, v).cost);
      }
      {  // graceful / abrupt edge deletion
        const auto edges = g.edges();
        const auto [u, v] = edges[rng.below(edges.size())];
        DistMis graceful(g, seed);
        rows[1].add(graceful.remove_edge(u, v, DeletionMode::kGraceful).cost);
        DistMis abrupt(g, seed);
        rows[2].add(abrupt.remove_edge(u, v, DeletionMode::kAbrupt).cost);
      }
      {  // node insertion (random attachments, ~deg of them)
        DistMis mis(g, seed);
        std::vector<graph::NodeId> attach;
        for (graph::NodeId v = 0; v < n && attach.size() < deg; v += n / 16)
          attach.push_back(v);
        rows[3].add(mis.insert_node(attach).cost);
      }
      {  // unmute with the same attachments
        DistMis mis(g, seed);
        std::vector<graph::NodeId> attach;
        for (graph::NodeId v = 0; v < n && attach.size() < deg; v += n / 16)
          attach.push_back(v);
        rows[4].add(mis.unmute_node(attach).cost);
      }
      {  // graceful / abrupt node deletion
        const auto victim = static_cast<graph::NodeId>(rng.below(n));
        DistMis graceful(g, seed);
        rows[5].add(graceful.remove_node(victim, DeletionMode::kGraceful).cost);
        DistMis abrupt(g, seed);
        rows[6].add(abrupt.remove_node(victim, DeletionMode::kAbrupt).cost);
      }
    }
    static const char* kLabels[7] = {
        "edge-insert",        "edge-delete (graceful)", "edge-delete (abrupt)",
        "node-insert",        "node-unmute",            "node-delete (graceful)",
        "node-delete (abrupt)"};
    for (int i = 0; i < 7; ++i) emit(table, kLabels[i], n, rows[i]);
  }
  table.print(std::cout);

  // Lemma 13 scaling: abrupt deletion of a victim with controlled degree.
  std::cout << "\n# E3b — abrupt node deletion: broadcasts vs victim degree "
               "(paper: O(min{log n, d}))\n";
  util::Table abrupt_table({"n", "d(victim)", "E[broadcasts] ± 95%",
                            "E[rounds]", "E[adj]"});
  for (const graph::NodeId n : {256U, 2048U}) {
    for (const graph::NodeId d : {2U, 8U, 32U, 128U}) {
      CostRow row;
      for (int t = 0; t < trials; ++t) {
        util::Rng rng(static_cast<std::uint64_t>(t) * 17 + d);
        auto g = graph::random_avg_degree(n, 4.0, rng);
        // Wire a dedicated victim to exactly d random nodes.
        const graph::NodeId victim = g.add_node();
        while (g.degree(victim) < d) {
          const auto u = static_cast<graph::NodeId>(rng.below(n));
          g.add_edge(victim, u);
        }
        DistMis mis(g, 9'000 + static_cast<std::uint64_t>(t));
        row.add(mis.remove_node(victim, DeletionMode::kAbrupt).cost);
      }
      record("abrupt_delete_vs_degree", "node-delete (abrupt)", n, d, row);
      abrupt_table.row()
          .cell(static_cast<std::uint64_t>(n))
          .cell(static_cast<std::uint64_t>(d))
          .cell_pm(row.broadcasts.mean(), row.broadcasts.ci95())
          .cell(row.rounds.mean(), 2)
          .cell(row.adjustments.mean(), 3);
    }
  }
  abrupt_table.print(std::cout);

  std::cout << "\n# E3c — node insertion: broadcasts vs degree (paper: O(d))\n";
  util::Table insert_table({"n", "d(new node)", "E[broadcasts] ± 95%",
                            "broadcasts − d", "E[rounds]"});
  const graph::NodeId n = 1024;
  for (const graph::NodeId d : {1U, 4U, 16U, 64U, 256U}) {
    CostRow row;
    for (int t = 0; t < trials; ++t) {
      util::Rng rng(static_cast<std::uint64_t>(t) * 29 + d);
      const auto g = graph::random_avg_degree(n, 4.0, rng);
      std::vector<graph::NodeId> attach;
      while (attach.size() < d) {
        const auto u = static_cast<graph::NodeId>(rng.below(n));
        bool fresh = true;
        for (const auto w : attach) fresh &= w != u;
        if (fresh) attach.push_back(u);
      }
      DistMis mis(g, 11'000 + static_cast<std::uint64_t>(t));
      row.add(mis.insert_node(attach).cost);
    }
    record("insert_vs_degree", "node-insert", n, d, row);
    insert_table.row()
        .cell(static_cast<std::uint64_t>(n))
        .cell(static_cast<std::uint64_t>(d))
        .cell_pm(row.broadcasts.mean(), row.broadcasts.ci95())
        .cell(row.broadcasts.mean() - static_cast<double>(d), 2)
        .cell(row.rounds.mean(), 2);
  }
  insert_table.print(std::cout);
  return write_json(json_path) ? 0 : 1;
}
