// E14 — per-update latency and sustained throughput of the sequential hot
// path (CascadeEngine), the perf-trajectory anchor for this repository.
//
// Three workloads at n ∈ {1e4, 1e5, 1e6} (override with --sizes):
//   * insert — insertion-heavy: random edge insertions into a sparse graph;
//   * delete — deletion-heavy: random edge deletions from a warm graph;
//   * churn  — steady-state toggles (remove if present, insert otherwise) on
//     a warm graph, the regime where allocator traffic shows up most.
//
// Each update is timed individually (steady_clock), so the output has both
// aggregate updates/sec and the p50/p95/p99 latency tail. Results are
// appended to a machine-readable JSON file (default BENCH_update_latency.json
// in the working directory) so successive PRs can diff the trajectory.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/cascade_engine.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace {

using namespace dmis;
using graph::NodeId;
using Clock = std::chrono::steady_clock;

struct Result {
  std::string workload;
  NodeId n = 0;
  double avg_degree = 0;
  std::uint64_t ops = 0;
  double seconds = 0;
  double updates_per_sec = 0;
  double ns_p50 = 0, ns_p95 = 0, ns_p99 = 0, ns_max = 0;
  double adjustments_per_update = 0;
};

double percentile(std::vector<std::uint32_t>& ns, double p) {
  if (ns.empty()) return 0;
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(ns.size() - 1));
  std::nth_element(ns.begin(), ns.begin() + static_cast<std::ptrdiff_t>(idx), ns.end());
  return static_cast<double>(ns[idx]);
}

Result summarize(const char* workload, NodeId n, double deg, std::uint64_t applied,
                 std::uint64_t adjustments, std::vector<std::uint32_t>& ns) {
  Result r;
  r.workload = workload;
  r.n = n;
  r.avg_degree = deg;
  r.ops = applied;
  double total_ns = 0;
  for (const auto t : ns) total_ns += static_cast<double>(t);
  r.seconds = total_ns * 1e-9;
  r.updates_per_sec = r.seconds > 0 ? static_cast<double>(applied) / r.seconds : 0;
  r.ns_p50 = percentile(ns, 0.50);
  r.ns_p95 = percentile(ns, 0.95);
  r.ns_p99 = percentile(ns, 0.99);
  r.ns_max = ns.empty() ? 0 : static_cast<double>(*std::max_element(ns.begin(), ns.end()));
  r.adjustments_per_update =
      applied > 0 ? static_cast<double>(adjustments) / static_cast<double>(applied) : 0;
  return r;
}

/// Time one engine call, push the latency, and accumulate adjustments.
template <typename F>
void timed(F&& op, std::vector<std::uint32_t>& ns, const core::CascadeEngine& engine,
           std::uint64_t& adjustments) {
  const auto t0 = Clock::now();
  op();
  const auto t1 = Clock::now();
  ns.push_back(static_cast<std::uint32_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()));
  adjustments += engine.last_report().adjustments;
}

Result run_insert(NodeId n, double deg, std::uint64_t ops, std::uint64_t seed) {
  core::CascadeEngine engine(graph::DynamicGraph(n), seed);
  util::Rng rng(seed * 11 + 1);
  std::vector<std::uint32_t> ns;
  ns.reserve(ops);
  std::uint64_t adjustments = 0;
  const auto max_edges = static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(deg) / 2;
  while (ns.size() < ops && engine.graph().edge_count() < max_edges) {
    const auto u = static_cast<NodeId>(rng.below(n));
    const auto v = static_cast<NodeId>(rng.below(n));
    if (u == v || engine.graph().has_edge(u, v)) continue;
    timed([&] { engine.add_edge(u, v); }, ns, engine, adjustments);
  }
  return summarize("insert", n, deg, ns.size(), adjustments, ns);
}

Result run_delete(NodeId n, double deg, std::uint64_t ops, std::uint64_t seed) {
  util::Rng graph_rng(seed);
  core::CascadeEngine engine(graph::random_avg_degree(n, deg, graph_rng), seed);
  util::Rng rng(seed * 11 + 2);
  auto edges = engine.graph().edges();
  rng.shuffle(edges);
  if (edges.size() > ops) edges.resize(ops);
  std::vector<std::uint32_t> ns;
  ns.reserve(edges.size());
  std::uint64_t adjustments = 0;
  for (const auto& [u, v] : edges)
    timed([&] { engine.remove_edge(u, v); }, ns, engine, adjustments);
  return summarize("delete", n, deg, ns.size(), adjustments, ns);
}

Result run_churn(NodeId n, double deg, std::uint64_t ops, std::uint64_t seed) {
  util::Rng graph_rng(seed);
  core::CascadeEngine engine(graph::random_avg_degree(n, deg, graph_rng), seed);
  util::Rng rng(seed * 11 + 3);
  std::vector<std::uint32_t> ns;
  ns.reserve(ops);
  std::uint64_t adjustments = 0;
  while (ns.size() < ops) {
    const auto u = static_cast<NodeId>(rng.below(n));
    const auto v = static_cast<NodeId>(rng.below(n));
    if (u == v) continue;
    if (engine.graph().has_edge(u, v))
      timed([&] { engine.remove_edge(u, v); }, ns, engine, adjustments);
    else
      timed([&] { engine.add_edge(u, v); }, ns, engine, adjustments);
  }
  return summarize("churn", n, deg, ns.size(), adjustments, ns);
}

bool validate(const std::vector<Result>& results) {
  // Self-check behind --validate: the same update_latency rules
  // scripts/validate_bench.py applies to the emitted JSON, enforced on the
  // in-memory rows before writing.
  if (results.empty()) {
    std::fprintf(stderr, "validate: no results\n");
    return false;
  }
  for (const Result& r : results) {
    const bool ok = r.n >= 2 && r.ops > 0 && r.seconds >= 0 &&
                    r.updates_per_sec > 0 && r.ns_p50 >= 0 &&
                    r.ns_p50 <= r.ns_p95 && r.ns_p95 <= r.ns_p99 &&
                    r.ns_p99 <= r.ns_max && r.adjustments_per_update >= 0;
    if (!ok) {
      std::fprintf(stderr, "validate: malformed row (%s, n=%u)\n",
                   r.workload.c_str(), r.n);
      return false;
    }
  }
  return true;
}

bool write_json(const std::string& path, const std::vector<Result>& results,
                std::uint64_t ops, std::uint64_t seed) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"update_latency\",\n");
  std::fprintf(f, "  \"config\": {\"ops\": %llu, \"seed\": %llu},\n",
               static_cast<unsigned long long>(ops), static_cast<unsigned long long>(seed));
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"n\": %u, \"avg_degree\": %.1f, "
                 "\"ops\": %llu, \"seconds\": %.6f, \"updates_per_sec\": %.0f, "
                 "\"ns_p50\": %.0f, \"ns_p95\": %.0f, \"ns_p99\": %.0f, "
                 "\"ns_max\": %.0f, \"adjustments_per_update\": %.4f}%s\n",
                 r.workload.c_str(), r.n, r.avg_degree,
                 static_cast<unsigned long long>(r.ops), r.seconds, r.updates_per_sec,
                 r.ns_p50, r.ns_p95, r.ns_p99, r.ns_max, r.adjustments_per_update,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t ops = 200'000;
  std::uint64_t seed = 42;
  double deg = 8.0;
  std::vector<NodeId> sizes = {10'000, 100'000, 1'000'000};
  std::string out = "BENCH_update_latency.json";
  bool validate_flag = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--ops") ops = std::strtoull(next(), nullptr, 10);
    else if (arg == "--seed") seed = std::strtoull(next(), nullptr, 10);
    else if (arg == "--deg") deg = std::strtod(next(), nullptr);
    else if (arg == "--out") out = next();
    else if (arg == "--validate") validate_flag = true;
    else if (arg == "--sizes") {
      sizes.clear();
      const char* s = next();
      while (*s != '\0') {
        char* end = nullptr;
        const unsigned long parsed = std::strtoul(s, &end, 10);
        if (end == s || parsed < 2) {
          std::fprintf(stderr, "--sizes wants a comma-separated list of node counts >= 2\n");
          return 2;
        }
        sizes.push_back(static_cast<NodeId>(parsed));
        s = *end == ',' ? end + 1 : end;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--ops N] [--seed S] [--deg D] [--sizes a,b,c] [--out F] [--validate]\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<Result> results;
  for (const NodeId n : sizes) {
    using RunFn = Result (*)(NodeId, double, std::uint64_t, std::uint64_t);
    for (const RunFn fn : {&run_insert, &run_delete, &run_churn}) {
      const Result r = fn(n, deg, ops, seed);
      results.push_back(r);
      std::printf("%-7s n=%-8u ops=%-7llu %12.0f upd/s  p50=%5.0fns p95=%6.0fns "
                  "p99=%7.0fns adj/upd=%.3f\n",
                  r.workload.c_str(), r.n, static_cast<unsigned long long>(r.ops),
                  r.updates_per_sec, r.ns_p50, r.ns_p95, r.ns_p99,
                  r.adjustments_per_update);
    }
  }
  if (validate_flag && !validate(results)) return 1;
  return write_json(out, results, ops, seed) ? 0 : 1;
}
