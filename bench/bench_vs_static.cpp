// E10 — dynamic vs static recompute (the headline engineering comparison).
//
// Per-update cost of three strategies on the same random edge-churn
// workload, as n grows:
//   * Algorithm 2 (this paper)        — expected O(1) everything
//   * Luby re-run from scratch        — Θ(log n) rounds, Θ(n) broadcasts,
//                                       Θ(n) adjustments (fresh randomness)
//   * deterministic dynamic greedy    — no communication model, but its
//                                       adjustments explode on adversarial
//                                       inputs (see bench_lowerbound)
#include <iostream>

#include "baselines/static_recompute.hpp"
#include "core/dist_mis.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace dmis;
using util::OnlineStats;

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto updates = static_cast<int>(cli.flag_int("updates", 60, "changes per run"));
  cli.finish();

  std::cout << "# E10 — per-update cost: dynamic (Algorithm 2) vs static "
               "recompute (Luby)\n";
  util::Table table({"n", "strategy", "E[adjustments]", "E[rounds]",
                     "E[broadcasts]", "E[bits]"});

  for (const graph::NodeId n : {64U, 256U, 1024U}) {
    util::Rng graph_rng(n);
    const auto g = graph::random_avg_degree(n, 6.0, graph_rng);

    // Shared workload: a fixed list of edge toggles.
    std::vector<std::pair<graph::NodeId, graph::NodeId>> toggles;
    {
      util::Rng rng(n * 13 + 1);
      while (toggles.size() < static_cast<std::size_t>(updates)) {
        const auto u = static_cast<graph::NodeId>(rng.below(n));
        const auto v = static_cast<graph::NodeId>(rng.below(n));
        if (u != v) toggles.emplace_back(u, v);
      }
    }

    {
      core::DistMis mis(g, 77);
      OnlineStats adj;
      OnlineStats rounds;
      OnlineStats bcast;
      OnlineStats bits;
      for (const auto& [u, v] : toggles) {
        const auto result = mis.graph().has_edge(u, v)
                                ? mis.remove_edge(u, v)
                                : mis.insert_edge(u, v);
        adj.add(static_cast<double>(result.cost.adjustments));
        rounds.add(static_cast<double>(result.cost.rounds));
        bcast.add(static_cast<double>(result.cost.broadcasts));
        bits.add(static_cast<double>(result.cost.bits));
      }
      table.row()
          .cell(static_cast<std::uint64_t>(n))
          .cell("dynamic (Algorithm 2)")
          .cell(adj.mean(), 3)
          .cell(rounds.mean(), 2)
          .cell(bcast.mean(), 2)
          .cell(bits.mean(), 1);
    }

    {
      baselines::StaticRecomputeMis mis(g, 77);
      OnlineStats adj;
      OnlineStats rounds;
      OnlineStats bcast;
      OnlineStats bits;
      for (const auto& [u, v] : toggles) {
        const auto op = mis.graph().has_edge(u, v)
                            ? workload::GraphOp::remove_edge(u, v)
                            : workload::GraphOp::add_edge(u, v);
        const auto cost = mis.apply(op);
        adj.add(static_cast<double>(cost.adjustments));
        rounds.add(static_cast<double>(cost.rounds));
        bcast.add(static_cast<double>(cost.broadcasts));
        bits.add(static_cast<double>(cost.bits));
      }
      table.row()
          .cell(static_cast<std::uint64_t>(n))
          .cell("static recompute (Luby)")
          .cell(adj.mean(), 3)
          .cell(rounds.mean(), 2)
          .cell(bcast.mean(), 2)
          .cell(bits.mean(), 1);
    }
  }
  table.print(std::cout);
  std::cout << "\n(the paper's separation: every dynamic column is flat in n; "
               "every static column grows — rounds ~log n, broadcasts/bits/"
               "adjustments ~n)\n";
  return 0;
}
