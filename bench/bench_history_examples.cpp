// E6/E7/E8 — the worked examples of §5: history-independent outputs vs the
// adversary-controlled "natural" greedy baseline.
//
//   E6  star:        E[MIS size] = (n−1)(1−1/n) + 1/n  vs natural = 1
//   E7  3-paths:     E[matching] = 5n/12               vs natural = n/4
//   E8  K_{k,k}−PM:  greedy coloring uses 2 colors w.p. 1−O(1/n)
//                    vs first-fit on the adversarial order = k colors;
//                    the MIS clique-expansion reduction is also measured.
#include <iostream>

#include "baselines/natural_greedy.hpp"
#include "core/dynamic_mis.hpp"
#include "derived/dynamic_coloring.hpp"
#include "derived/dynamic_matching.hpp"
#include "derived/greedy_coloring.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/adversarial.hpp"

namespace {

using namespace dmis;
using util::OnlineStats;

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto trials = static_cast<int>(cli.flag_int("trials", 400, "random orders"));
  cli.finish();

  // ----- E6: MIS in a star --------------------------------------------------
  std::cout << "# E6 — §5 Example 1: MIS size in a star on n nodes\n";
  util::Table star({"n", "E[size] ± 95%", "paper prediction", "natural greedy",
                    "maximum IS"});
  for (const graph::NodeId n : {16U, 64U, 256U}) {
    OnlineStats size;
    for (int t = 0; t < trials; ++t) {
      core::DynamicMIS mis(graph::star(n), 100 + static_cast<std::uint64_t>(t) * 3);
      size.add(static_cast<double>(mis.mis_size()));
    }
    // Natural greedy under the adversarial center-first construction.
    baselines::NaturalGreedyMis natural;
    const auto center = natural.add_node();
    for (graph::NodeId v = 1; v < n; ++v) (void)natural.add_node({center});
    const double predicted =
        (static_cast<double>(n) - 1.0) * (1.0 - 1.0 / n) + 1.0 / n;
    star.row()
        .cell(static_cast<std::uint64_t>(n))
        .cell_pm(size.mean(), size.ci95())
        .cell(predicted, 2)
        .cell(static_cast<std::uint64_t>(natural.mis_set().size()))
        .cell(static_cast<std::uint64_t>(n - 1));
  }
  star.print(std::cout);

  // ----- E7: maximal matching on disjoint 3-edge paths ----------------------
  std::cout << "\n# E7 — §5 Example 2: matching size on n/4 disjoint 3-edge paths\n";
  util::Table paths({"n (nodes)", "E[matching] ± 95%", "paper 5n/12",
                     "natural (middle-first)", "maximum n/2"});
  for (const graph::NodeId path_count : {8U, 32U, 128U}) {
    const graph::NodeId n = 4 * path_count;
    OnlineStats size;
    for (int t = 0; t < trials / 2; ++t) {
      derived::DynamicMatching m(300 + static_cast<std::uint64_t>(t) * 7);
      for (graph::NodeId i = 0; i < n; ++i) (void)m.add_node();
      for (graph::NodeId i = 0; i < path_count; ++i) {
        const graph::NodeId base = 4 * i;
        m.add_edge(base, base + 1);
        m.add_edge(base + 1, base + 2);
        m.add_edge(base + 2, base + 3);
      }
      size.add(static_cast<double>(m.matching_size()));
    }
    baselines::NaturalGreedyMatching natural;
    for (graph::NodeId i = 0; i < n; ++i) (void)natural.add_node();
    for (graph::NodeId i = 0; i < path_count; ++i) {
      const graph::NodeId base = 4 * i;
      natural.add_edge(base + 1, base + 2);
      natural.add_edge(base, base + 1);
      natural.add_edge(base + 2, base + 3);
    }
    paths.row()
        .cell(static_cast<std::uint64_t>(n))
        .cell_pm(size.mean(), size.ci95())
        .cell(5.0 * n / 12.0, 2)
        .cell(static_cast<std::uint64_t>(natural.matching_size()))
        .cell(static_cast<std::uint64_t>(n / 2));
  }
  paths.print(std::cout);

  // ----- E8: coloring K_{k,k} minus a perfect matching ----------------------
  std::cout << "\n# E8 — §5 Example 3: coloring K_{k,k} minus a perfect matching\n";
  util::Table coloring({"k (n = 2k)", "P(greedy uses 2 colors)",
                        "E[greedy colors]", "first-fit (adversarial order)",
                        "MIS-reduction colors (one sample)"});
  for (const graph::NodeId k : {8U, 16U, 32U}) {
    const auto g = graph::bipartite_minus_perfect_matching(k);
    int two = 0;
    OnlineStats colors;
    for (int t = 0; t < trials; ++t) {
      derived::GreedyColoringEngine engine(g, 500 + static_cast<std::uint64_t>(t) * 11);
      const auto used = engine.palette_used();
      colors.add(static_cast<double>(used));
      two += used == 2 ? 1 : 0;
    }

    // First-fit under the §5 adversarial alternating arrival order.
    const auto adversarial = workload::bipartite_minus_pm_alternating(k);
    const auto adversarial_graph = workload::materialize(adversarial);
    std::vector<graph::NodeId> order;
    for (graph::NodeId v = 0; v < 2 * k; ++v) order.push_back(v);
    const auto ff = baselines::first_fit_coloring(adversarial_graph, order);
    graph::NodeId ff_max = 0;
    for (const auto v : adversarial_graph.nodes()) ff_max = std::max(ff_max, ff[v]);

    // One sample of the clique-expansion reduction (palette = k: Δ = k−1).
    derived::DynamicColoring reduction(k, 999 + k);
    for (graph::NodeId v = 0; v < 2 * k; ++v) (void)reduction.add_node();
    for (const auto& [u, v] : g.edges()) reduction.add_edge(u, v);
    reduction.verify();

    coloring.row()
        .cell(static_cast<std::uint64_t>(k))
        .cell(two / static_cast<double>(trials), 3)
        .cell_pm(colors.mean(), colors.ci95())
        .cell(static_cast<std::uint64_t>(ff_max) + 1)
        .cell(reduction.palette_used());
  }
  coloring.print(std::cout);
  std::cout << "\n(paper sketch: 2-coloring w.p. 1 − 1/n; measured bad-order "
               "probability is ≈ 1.75/n — same vanishing rate. First-fit is "
               "forced to k colors by the adversary.)\n";
  return 0;
}
