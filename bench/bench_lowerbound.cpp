// E4 — the §1.1 lower bounds.
//
// Deterministic: on K_{k,k}, deleting the side chosen as the MIS node by
// node forces, at some single change, k adjustments (here: the last
// deletion flips the whole right side). Randomized: the same adversarial
// sequence costs k total in expectation — amortized 1 per change, matching
// the paper's claim that expected adjustment complexity ≥ 1 is unavoidable —
// and the per-change maximum concentrates far below k only in *expectation*,
// with a heavy tail (no high-probability improvement is possible).
#include <iostream>

#include "baselines/deterministic_mis.hpp"
#include "core/dynamic_mis.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace dmis;
using util::OnlineStats;

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto trials = static_cast<int>(cli.flag_int("trials", 200, "randomized trials"));
  cli.finish();

  std::cout << "# E4 — deterministic lower bound on K_{k,k} left-side deletions\n";
  util::Table table({"k", "det max adj (one change)", "det total",
                     "rand E[max adj] ± 95%", "rand E[total] ± 95%",
                     "rand E[per change]"});

  for (const graph::NodeId k : {4U, 16U, 64U, 256U}) {
    // Deterministic algorithm: id order keeps the left side as the MIS until
    // the very last deletion, which flips everything.
    baselines::DeterministicMis det(graph::complete_bipartite(k, k));
    std::uint64_t det_max = 0;
    std::uint64_t det_total = 0;
    for (graph::NodeId v = 0; v < k; ++v) {
      const auto rep = det.remove_node(v);
      det_max = std::max(det_max, rep.adjustments);
      det_total += rep.adjustments;
    }

    OnlineStats rand_max;
    OnlineStats rand_total;
    OnlineStats rand_per_change;
    for (int t = 0; t < trials; ++t) {
      core::DynamicMIS mis(graph::complete_bipartite(k, k),
                           1'000 + static_cast<std::uint64_t>(t) * 7);
      std::uint64_t worst = 0;
      std::uint64_t total = 0;
      for (graph::NodeId v = 0; v < k; ++v) {
        mis.remove_node(v);
        const auto adj = mis.last_report().adjustments;
        worst = std::max(worst, adj);
        total += adj;
      }
      rand_max.add(static_cast<double>(worst));
      rand_total.add(static_cast<double>(total));
      rand_per_change.add(static_cast<double>(total) / static_cast<double>(k));
    }

    table.row()
        .cell(static_cast<std::uint64_t>(k))
        .cell(det_max)
        .cell(det_total)
        .cell_pm(rand_max.mean(), rand_max.ci95())
        .cell_pm(rand_total.mean(), rand_total.ci95())
        .cell(rand_per_change.mean(), 3);
  }
  table.print(std::cout);

  std::cout << "\n(deterministic pays k in a single change; randomized pays ~k in "
               "total over k changes — amortized 1, the provable optimum. The "
               "randomized max is the one flip step, whose timing is uniform; "
               "its size is the number of right nodes flipped at the step where "
               "the surviving left minimum stops dominating.)\n";

  // Tail behavior: distribution of the single-change maximum for one k.
  std::cout << "\n# E4b — randomized per-change adjustment tail on K_{32,32}\n";
  util::Table tail({"quantile", "adjustments at quantile"});
  util::Histogram hist;
  for (int t = 0; t < trials * 5; ++t) {
    core::DynamicMIS mis(graph::complete_bipartite(32, 32),
                         9'000 + static_cast<std::uint64_t>(t));
    std::uint64_t worst = 0;
    for (graph::NodeId v = 0; v < 32; ++v) {
      mis.remove_node(v);
      worst = std::max(worst, mis.last_report().adjustments);
    }
    hist.add(static_cast<std::int64_t>(worst));
  }
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    tail.row().cell(util::format_double(q, 2)).cell(
        static_cast<std::int64_t>(hist.quantile(q)));
  }
  tail.print(std::cout);
  std::cout << "\n(heavy tail as predicted: no high-probability bound beats "
               "Markov — §1.1)\n";
  return 0;
}
