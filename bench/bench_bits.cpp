// E11 — the O(1)-bits-per-broadcast refinement (§1.1, Métivier et al.).
//
// Table 1: one-shot comparisons — E[bits revealed] ≈ 4 regardless of how
//   many nodes exist (each pair decides at a Geometric(1/2) prefix depth).
// Table 2: a node ordering itself against d neighbors under the incremental
//   prefix-sharing protocol — total bits grow like Θ(d) with a small
//   constant, and the *per-neighbor* marginal cost stays O(1); contrast
//   with naive 64-bit priority announcements.
#include <iostream>

#include "core/bit_priority.hpp"
#include "graph/generators.hpp"
#include "sim/message.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace dmis;
using core::BitPriority;
using core::PairwiseBitOrder;
using util::OnlineStats;

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto trials = static_cast<int>(cli.flag_int("trials", 2000, "comparisons"));
  cli.finish();

  std::cout << "# E11 — lazy-bit priorities: bits per comparison "
               "(paper: O(1) expected)\n";
  util::Table table({"population", "E[bits/comparison] ± 95%", "p99 bits",
                     "naive bits (64-bit keys)"});
  for (const std::uint64_t population : {16ULL, 256ULL, 65536ULL}) {
    OnlineStats bits;
    util::Histogram hist;
    util::Rng rng(population);
    for (int t = 0; t < trials; ++t) {
      const auto u = static_cast<graph::NodeId>(rng.below(population));
      auto v = static_cast<graph::NodeId>(rng.below(population));
      if (u == v) v = static_cast<graph::NodeId>((v + 1) % population);
      const BitPriority a(7, u);
      const BitPriority b(7, v);
      const auto outcome = core::compare_bit_priorities(a, b);
      bits.add(static_cast<double>(outcome.bits_revealed));
      hist.add(static_cast<std::int64_t>(outcome.bits_revealed));
    }
    table.row()
        .cell(population)
        .cell_pm(bits.mean(), bits.ci95())
        .cell(hist.quantile(0.99))
        .cell(2 * static_cast<std::uint64_t>(sim::kLogNBits));
  }
  table.print(std::cout);

  std::cout << "\n# E11b — ordering a node against d neighbors "
               "(incremental prefix sharing)\n";
  util::Table nbr({"d", "E[total bits] ± 95%", "bits per neighbor",
                   "naive bits ((d+1)·64)"});
  for (const std::uint64_t d : {2ULL, 8ULL, 32ULL, 128ULL}) {
    OnlineStats total;
    for (std::uint64_t seed = 0; seed < 200; ++seed) {
      PairwiseBitOrder order(seed);
      for (graph::NodeId v = 1; v <= d; ++v) (void)order.before(0, v);
      total.add(static_cast<double>(order.total_bits()));
    }
    nbr.row()
        .cell(d)
        .cell_pm(total.mean(), total.ci95())
        .cell(total.mean() / static_cast<double>(d), 3)
        .cell((d + 1) * sim::kLogNBits);
  }
  nbr.print(std::cout);
  std::cout << "\n(≈ 4 bits/comparison one-shot; amortized below 4 with prefix "
               "sharing — versus 64-bit announcements)\n";
  return 0;
}
