// Batch-repair throughput: serial single-cascade apply_batch vs the
// priority-sharded parallel engine, swept over shard count × batch size.
//
// For every (n, batch_size) cell the same churn-batch sequence (identical
// generator seed) is replayed from the same initial graph through the
// serial engine and through ShardedCascadeEngine with S ∈ {1, 2, 4, 8}
// (S = 1 measures the parallel framework's overhead with zero cross-shard
// traffic). Only apply_batch is timed; generation is outside the clock.
// Results append to BENCH_batch_throughput.json so successive PRs can diff
// the trajectory; the JSON records hardware_concurrency because parallel
// speedup is bounded by the cores the container actually grants.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/batch.hpp"
#include "core/sharded_engine.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "workload/batched.hpp"
#include "workload/churn.hpp"

namespace {

using namespace dmis;
using graph::NodeId;
using Clock = std::chrono::steady_clock;

struct Result {
  NodeId n = 0;
  std::size_t batch_size = 0;
  unsigned shards = 0;  // 0 == serial apply_batch
  std::uint64_t ops = 0;
  std::uint64_t batches = 0;
  double seconds = 0;
  double updates_per_sec = 0;
  double adjustments_per_op = 0;
};

/// Edge-toggle churn on a warm graph (the regime the single-update latency
/// bench calls "churn"); node ops are excluded so every engine's id space
/// stays identical to the generator's.
std::vector<core::Batch> make_batches(const graph::DynamicGraph& g,
                                      std::size_t batch_size, std::uint64_t ops,
                                      std::uint64_t seed) {
  workload::ChurnConfig config;
  config.p_add_edge = 0.5;
  config.p_remove_edge = 0.5;
  config.p_add_node = 0.0;
  config.p_remove_node = 0.0;
  workload::ChurnGenerator generator(g, config, seed);
  return workload::churn_batches(generator, ops / batch_size, batch_size);
}

template <typename ApplyFn>
Result run_case(NodeId n, std::size_t batch_size, unsigned shards,
                const std::vector<core::Batch>& batches, ApplyFn&& apply) {
  Result r;
  r.n = n;
  r.batch_size = batch_size;
  r.shards = shards;
  std::uint64_t adjustments = 0;
  const auto t0 = Clock::now();
  for (const core::Batch& batch : batches) {
    adjustments += apply(batch).report.adjustments;
    r.ops += batch.size();
  }
  const auto t1 = Clock::now();
  r.batches = batches.size();
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.updates_per_sec = r.seconds > 0 ? static_cast<double>(r.ops) / r.seconds : 0;
  r.adjustments_per_op =
      r.ops > 0 ? static_cast<double>(adjustments) / static_cast<double>(r.ops) : 0;
  return r;
}

bool validate(const std::vector<Result>& results) {
  // Self-check behind --validate: the same batch_throughput rules
  // scripts/validate_bench.py applies to the emitted JSON, enforced on the
  // in-memory rows before writing.
  if (results.empty()) {
    std::fprintf(stderr, "validate: no results\n");
    return false;
  }
  for (const Result& r : results) {
    const bool ok = r.n >= 2 && r.batch_size >= 1 && r.ops > 0 && r.batches > 0 &&
                    r.seconds >= 0 && r.updates_per_sec > 0 &&
                    r.adjustments_per_op >= 0;
    if (!ok) {
      std::fprintf(stderr, "validate: malformed row (n=%u, batch=%zu, shards=%u)\n",
                   r.n, r.batch_size, r.shards);
      return false;
    }
  }
  return true;
}

bool write_json(const std::string& path, const std::vector<Result>& results,
                std::uint64_t ops, std::uint64_t seed, double deg) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"batch_throughput\",\n");
  std::fprintf(f,
               "  \"config\": {\"ops_per_cell\": %llu, \"seed\": %llu, "
               "\"avg_degree\": %.1f, \"hardware_concurrency\": %u},\n",
               static_cast<unsigned long long>(ops),
               static_cast<unsigned long long>(seed), deg,
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(f,
                 "    {\"n\": %u, \"batch_size\": %zu, \"engine\": \"%s\", "
                 "\"shards\": %u, \"ops\": %llu, \"batches\": %llu, "
                 "\"seconds\": %.6f, \"updates_per_sec\": %.0f, "
                 "\"adjustments_per_op\": %.4f}%s\n",
                 r.n, r.batch_size, r.shards == 0 ? "serial" : "sharded",
                 r.shards, static_cast<unsigned long long>(r.ops),
                 static_cast<unsigned long long>(r.batches), r.seconds,
                 r.updates_per_sec, r.adjustments_per_op,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t ops = 100'000;
  std::uint64_t seed = 42;
  double deg = 8.0;
  std::vector<NodeId> sizes = {100'000, 1'000'000};
  std::vector<std::size_t> batch_sizes = {16, 256, 4096};
  std::vector<unsigned> shard_counts = {1, 2, 4, 8};
  std::string out = "BENCH_batch_throughput.json";
  bool validate_flag = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    const auto parse_list = [](const char* s, auto& dst, unsigned long min_value) {
      dst.clear();
      while (*s != '\0') {
        char* end = nullptr;
        const unsigned long parsed = std::strtoul(s, &end, 10);
        if (end == s || parsed < min_value) return false;
        dst.push_back(static_cast<typename std::remove_reference_t<decltype(dst)>::value_type>(parsed));
        s = *end == ',' ? end + 1 : end;
      }
      return !dst.empty();
    };
    if (arg == "--ops") ops = std::strtoull(next(), nullptr, 10);
    else if (arg == "--seed") seed = std::strtoull(next(), nullptr, 10);
    else if (arg == "--deg") deg = std::strtod(next(), nullptr);
    else if (arg == "--out") out = next();
    else if (arg == "--validate") validate_flag = true;
    // A node count below 2 would spin the churn generator forever (no edge
    // to toggle), hence the floor on --sizes.
    else if (arg == "--sizes" && parse_list(next(), sizes, 2)) continue;
    else if (arg == "--batch-sizes" && parse_list(next(), batch_sizes, 1)) continue;
    else if (arg == "--shards" && parse_list(next(), shard_counts, 1)) continue;
    else {
      std::fprintf(stderr,
                   "usage: %s [--ops N] [--seed S] [--deg D] [--sizes a,b] "
                   "[--batch-sizes a,b] [--shards a,b] [--out F] [--validate]\n",
                   argv[0]);
      return 2;
    }
  }

  for (const unsigned s : shard_counts) {
    if (s == 0 || (s & (s - 1)) != 0 || s > 64) {
      std::fprintf(stderr, "--shards wants powers of two in [1, 64]\n");
      return 2;
    }
  }

  std::vector<Result> results;
  for (const NodeId n : sizes) {
    util::Rng graph_rng(seed);
    const auto g = graph::random_avg_degree(n, deg, graph_rng);
    for (const std::size_t batch_size : batch_sizes) {
      const auto batches = make_batches(g, batch_size, ops, seed * 31 + batch_size);

      {
        // Untimed warmup: the first engine to run would otherwise pay every
        // fresh-page fault for arrays the later engines recycle from the
        // allocator, skewing the serial-vs-sharded comparison.
        core::CascadeEngine warm(g, seed);
        for (const core::Batch& batch : batches) (void)core::apply_batch(warm, batch);
      }
      {
        core::CascadeEngine engine(g, seed);
        const Result r = run_case(n, batch_size, 0, batches,
                                  [&](const core::Batch& b) {
                                    return core::apply_batch(engine, b);
                                  });
        results.push_back(r);
        std::printf("serial    n=%-8u batch=%-5zu %12.0f upd/s  adj/op=%.3f\n",
                    n, batch_size, r.updates_per_sec, r.adjustments_per_op);
      }
      for (const unsigned shards : shard_counts) {
        core::ShardedCascadeEngine engine(g, seed, shards);
        const Result r = run_case(n, batch_size, shards, batches,
                                  [&](const core::Batch& b) {
                                    return engine.apply_batch(b);
                                  });
        results.push_back(r);
        std::printf("sharded%-2u n=%-8u batch=%-5zu %12.0f upd/s  adj/op=%.3f\n",
                    shards, n, batch_size, r.updates_per_sec, r.adjustments_per_op);
      }
    }
  }
  if (validate_flag && !validate(results)) return 1;
  return write_json(out, results, ops, seed, deg) ? 0 : 1;
}
