// bench_snapshot — quantifies the persistence layer: mmap-load of a binary
// graph snapshot vs. rebuilding the same graph edge by edge from its churn
// trace (the way every bench warmed up before the snapshot format existed).
//
// For each n the harness builds a warm G(n, m) at --deg, writes (a) the
// self-contained binary grow trace and (b) the snapshot, then times
//   rebuild   the repo's own trace→graph path (TraceFile → to_trace →
//             workload::materialize): hash + two adjacency pushes per edge,
//             plus the per-op neighbor vectors the Trace representation
//             carries — this is what every pre-snapshot consumer paid,
//   tuned     a best-case rebuild: allocation-free inline replay of the
//             mapped ops with the edge table pre-reserved (no caller ever
//             ran this — it bounds how much of the speedup is zero-copy
//             format vs. just avoiding Trace overhead),
//   save      DynamicGraph::save (streamed sections + checksum),
//   load      Snapshot::open (mmap + structural validation pass) plus
//             DynamicGraph::load (bulk memcpy + verbatim edge-table adopt).
// Each phase runs --reps times and the minimum is reported (the page cache
// is warm after rep 1 on both sides, so min compares compute, not I/O
// luck). The loaded graph is compared to the original for equality outside
// the timed region. Results append to BENCH_snapshot.json; the acceptance
// bar for the persistence layer is load >= 5x faster than rebuild at
// n = 1e6.
//
// The engine columns quantify the v2 warm start: a version-2 snapshot
// (persisted priority keys + membership) is saved from a CascadeEngine and
// then, in the SAME process with cold/warm reps strictly interleaved (so
// machine drift hits both sides equally — the ROADMAP's rule for perf
// claims),
//   engine_cold   Snapshot::open + CascadeEngine(snap, kCold): bulk graph
//                 load, fresh priority draws, full greedy recompute — the
//                 engine-ready path every snapshot consumer paid before v2,
//   engine_warm   Snapshot::open + CascadeEngine(snap, kWarm): bulk graph
//                 load + bulk key/membership adoption, zero recompute.
// The acceptance bar for the warm start is warm_speedup >= 2 at n = 1e6.
// Warm-vs-cold-keys equality is pinned outside the timed region.
//
// The borrowed columns quantify the zero-copy path: per rep, strictly
// interleaved with the materialized load,
//   borrow_open_s     shallow Snapshot::open + DynamicGraph::borrow + the
//                     first real query (degree + adjacency walk + edge
//                     probe, answered off the mapping) — "directory on
//                     disk" to "first answer" with no O(n + m) copy,
//   borrow_first_op_s the first mutation (a churn toggle): copy-on-write
//                     migration of two adjacency records + delta insert,
//   borrow_speedup    load_s / borrow_open_s. Acceptance bar: >= 10 at
//                     n = 1e6 (gated by scripts/check_bench.py).
// The borrowed graph is compared to the original outside the timed region.
//
// The v3 columns quantify the shard-partitioned snapshot: a version-3 file
// (same sections as v2 plus the 128-byte shard table) is saved from the
// same engine, and per rep — strictly interleaved with the v2 cold/warm
// pair, same CascadeEngine consumer so the ratio isolates the FORMAT cost —
//   engine_warm_v3   Snapshot::open + CascadeEngine(snap, kWarm) off v3,
//   v3_warm_ratio    engine_warm_v3_s / engine_warm_s. Acceptance bar:
//                    within 10% of 1.0 at S=1 (gated by check_bench.py —
//                    the shard table must be free when nobody shards).
//   v3_load_s        Snapshot::open + DynamicGraph::load(snap, --loaders):
//                    the parallel adoption path, one thread per shard
//                    stripe (reference runs record --loaders 1; the sweep
//                    is for machines with real cores).
// The v2 and v3 warm engines are differentially pinned outside the timed
// region: identical membership and |MIS|, and identical post-restart RNG
// state (one add_node continuation must re-decide identically on both).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/cascade_engine.hpp"
#include "core/engine_snapshot.hpp"
#include "graph/generators.hpp"
#include "graph/snapshot.hpp"
#include "util/rng.hpp"
#include "workload/trace.hpp"
#include "workload/trace_file.hpp"

namespace {

using namespace dmis;
using graph::NodeId;
using Clock = std::chrono::steady_clock;

struct Result {
  NodeId n = 0;
  std::uint64_t edges = 0;
  std::uint64_t snapshot_bytes = 0;
  std::uint64_t trace_bytes = 0;
  double rebuild_s = 0;        // the repo's trace→graph path (materialize)
  double rebuild_tuned_s = 0;  // best-case inline replay, edge table reserved
  double save_s = 0;
  double open_s = 0;  // Snapshot::open alone (mmap + validation pass)
  double load_s = 0;  // Snapshot::open + DynamicGraph::load
  double speedup_vs_rebuild = 0;
  // Borrowed (zero-copy) columns, measured rep-interleaved with load_s so
  // the ratio compares within one machine state:
  double borrow_open_s = 0;      // shallow open + borrow + first query
  double borrow_first_op_s = 0;  // first mutation (copy-on-write + delta)
  double borrow_speedup = 0;     // load_s / borrow_open_s
  double engine_cold_s = 0;  // open + cold engine start (fresh keys + greedy)
  double engine_warm_s = 0;  // open + warm engine start (persisted state)
  double warm_speedup = 0;   // engine_cold_s / engine_warm_s (interleaved run)
  // v3 (shard-partitioned) columns, rep-interleaved with the v2 pair:
  double engine_warm_v3_s = 0;  // open + warm engine start off the v3 file
  double v3_warm_ratio = 0;     // engine_warm_v3_s / engine_warm_s
  unsigned v3_loaders = 1;      // threads given to the parallel graph load
  double v3_load_s = 0;         // open + DynamicGraph::load(snap, loaders)
};

template <typename F>
double min_seconds(int reps, F&& f) {
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    f();
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    if (r == 0 || s < best) best = s;
  }
  return best;
}

Result run_size(NodeId n, double deg, std::uint64_t seed, int reps,
                unsigned loaders, const std::filesystem::path& dir) {
  Result r;
  r.n = n;
  r.v3_loaders = loaders;
  util::Rng rng(seed);
  const graph::DynamicGraph g = graph::random_avg_degree(n, deg, rng);
  r.edges = g.edge_count();

  const std::string trace_path = (dir / ("bench_" + std::to_string(n) + ".trc")).string();
  const std::string snap_path = (dir / ("bench_" + std::to_string(n) + ".snap")).string();
  std::string error;
  const workload::Trace grow = workload::grow_trace(g);
  if (!workload::TraceFile::save(trace_path, grow, &error)) {
    std::fprintf(stderr, "trace save failed: %s\n", error.c_str());
    std::exit(1);
  }

  // Headline comparator: the path every pre-snapshot consumer of a trace
  // actually ran (and what `dmis_snapshot save --trace` still runs).
  graph::DynamicGraph rebuilt;
  r.rebuild_s = min_seconds(reps, [&] {
    workload::TraceFile tf;
    if (!tf.open(trace_path, &error)) {
      std::fprintf(stderr, "trace open failed: %s\n", error.c_str());
      std::exit(1);
    }
    rebuilt = workload::materialize(tf.to_trace());
  });

  // Best-case comparator: zero-allocation replay straight off the mapping
  // with the edge table pre-sized. Strictly faster than any rebuild the
  // codebase ever shipped; the snapshot still has to beat it on bulk copies
  // alone.
  graph::DynamicGraph rebuilt_tuned;
  r.rebuild_tuned_s = min_seconds(reps, [&] {
    workload::TraceFile tf;
    if (!tf.open(trace_path, &error)) {
      std::fprintf(stderr, "trace open failed: %s\n", error.c_str());
      std::exit(1);
    }
    graph::DynamicGraph built;
    built.reserve_edges(r.edges);
    for (std::size_t i = 0; i < tf.size(); ++i) {
      const auto op = tf.op(i);
      switch (op.kind) {
        case workload::OpKind::kAddNode:
        case workload::OpKind::kUnmuteNode: {
          const NodeId v = built.add_node();
          for (const NodeId u : op.neighbors) built.add_edge(v, u);
          break;
        }
        case workload::OpKind::kAddEdge:
          built.add_edge(op.u, op.v);
          break;
        case workload::OpKind::kRemoveEdgeGraceful:
        case workload::OpKind::kRemoveEdgeAbrupt:
          built.remove_edge(op.u, op.v);
          break;
        case workload::OpKind::kRemoveNodeGraceful:
        case workload::OpKind::kRemoveNodeAbrupt:
          built.remove_node(op.u);
          break;
      }
    }
    rebuilt_tuned = std::move(built);
  });

  r.save_s = min_seconds(reps, [&] {
    if (!g.save(snap_path, &error)) {
      std::fprintf(stderr, "snapshot save failed: %s\n", error.c_str());
      std::exit(1);
    }
  });

  r.open_s = min_seconds(reps, [&] {
    graph::Snapshot snap;
    if (!snap.open(snap_path, &error)) {
      std::fprintf(stderr, "snapshot open failed: %s\n", error.c_str());
      std::exit(1);
    }
  });

  // Materialized load vs. borrowed open, reps strictly interleaved (A then
  // B per rep) so the >= 10x open-to-first-query claim compares the two
  // paths under identical machine state — the ROADMAP's rule for ratios.
  graph::DynamicGraph loaded;
  std::shared_ptr<graph::Snapshot> last_borrow_base;
  graph::DynamicGraph borrowed;
  std::uint64_t borrow_sink = 0;
  // A probe vertex with neighbors: the borrowed "first query" walks its
  // adjacency off the mapping.
  NodeId probe = n / 2;
  while (probe < n && g.degree(probe) == 0) ++probe;
  if (probe >= n) probe = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t_load = Clock::now();
    {
      graph::Snapshot snap;
      if (!snap.open(snap_path, &error)) {
        std::fprintf(stderr, "snapshot open failed: %s\n", error.c_str());
        std::exit(1);
      }
      loaded = graph::DynamicGraph::load(snap);
    }
    const double load_s = std::chrono::duration<double>(Clock::now() - t_load).count();
    if (rep == 0 || load_s < r.load_s) r.load_s = load_s;

    // Borrowed open-to-first-query: shallow open (O(1) header + shape
    // checks; the lazy per-node guard covers what the skipped linear pass
    // would have), borrow, then answer a real adjacency + edge query.
    const auto t_borrow = Clock::now();
    auto base = std::make_shared<graph::Snapshot>();
    if (!base->open(snap_path, &error, false, graph::SnapshotValidation::kShallow)) {
      std::fprintf(stderr, "shallow snapshot open failed: %s\n", error.c_str());
      std::exit(1);
    }
    graph::DynamicGraph b = graph::DynamicGraph::borrow(base);
    borrow_sink += b.degree(probe);
    for (const NodeId u : b.neighbors(probe)) {
      borrow_sink += b.has_edge(probe, u) ? 1 : 0;
      break;
    }
    const double borrow_open =
        std::chrono::duration<double>(Clock::now() - t_borrow).count();
    if (rep == 0 || borrow_open < r.borrow_open_s) r.borrow_open_s = borrow_open;

    // First mutation: a churn toggle on the probe vertex — copy-on-write
    // migration of two adjacency records plus one delta-table insert.
    const NodeId nbr = b.neighbors(probe)[0];
    const auto t_op = Clock::now();
    if (!b.remove_edge(probe, nbr) || !b.add_edge(probe, nbr)) {
      std::fprintf(stderr, "borrowed toggle failed at n=%u\n", n);
      std::exit(1);
    }
    const double first_op = std::chrono::duration<double>(Clock::now() - t_op).count();
    if (rep == 0 || first_op < r.borrow_first_op_s) r.borrow_first_op_s = first_op;
    borrowed = std::move(b);
    last_borrow_base = std::move(base);
  }
  r.speedup_vs_rebuild = r.load_s > 0 ? r.rebuild_s / r.load_s : 0;
  r.borrow_speedup = r.borrow_open_s > 0 ? r.load_s / r.borrow_open_s : 0;
  if (borrow_sink == 0) std::fprintf(stderr, "(borrow probe saw nothing — suspicious)\n");

  // The last rep's borrowed graph (toggle included — it ends where it
  // started) must equal the original, edge for edge.
  if (!(loaded == g) || !(rebuilt == g) || !(rebuilt_tuned == g) || !(borrowed == g)) {
    std::fprintf(stderr, "round-trip mismatch at n=%u\n", n);
    std::exit(1);
  }
  borrowed = graph::DynamicGraph();
  last_borrow_base.reset();
  r.snapshot_bytes = std::filesystem::file_size(snap_path);
  r.trace_bytes = std::filesystem::file_size(trace_path);

  // Warm-vs-cold engine start off a v2 snapshot, reps strictly interleaved
  // (cold then warm per rep) so the two columns share every machine-state
  // swing and their ratio is trustworthy within this one process.
  const std::string v2_path =
      (dir / ("bench_" + std::to_string(n) + "_v2.snap")).string();
  const std::string v3_path =
      (dir / ("bench_" + std::to_string(n) + "_v3.snap")).string();
  {
    const core::CascadeEngine source(g, seed);
    if (!core::save_snapshot(source, v2_path, &error)) {
      std::fprintf(stderr, "v2 snapshot save failed: %s\n", error.c_str());
      std::exit(1);
    }
    if (!core::save_snapshot_sharded(source, v3_path, graph::kSnapshotMaxShards,
                                     &error)) {
      std::fprintf(stderr, "v3 snapshot save failed: %s\n", error.c_str());
      std::exit(1);
    }
  }
  std::size_t sink = 0;  // consumed below so the engines cannot be elided
  for (int rep = 0; rep < reps; ++rep) {
    const auto t_cold = Clock::now();
    {
      graph::Snapshot snap;
      if (!snap.open(v2_path, &error)) {
        std::fprintf(stderr, "v2 snapshot open failed: %s\n", error.c_str());
        std::exit(1);
      }
      const core::CascadeEngine cold(snap, seed, graph::SnapshotLoad::kCold);
      sink += cold.mis_size();
    }
    const double cold_s = std::chrono::duration<double>(Clock::now() - t_cold).count();
    if (rep == 0 || cold_s < r.engine_cold_s) r.engine_cold_s = cold_s;

    const auto t_warm = Clock::now();
    {
      graph::Snapshot snap;
      if (!snap.open(v2_path, &error)) {
        std::fprintf(stderr, "v2 snapshot open failed: %s\n", error.c_str());
        std::exit(1);
      }
      const core::CascadeEngine warm(snap, seed, graph::SnapshotLoad::kWarm);
      sink += warm.mis_size();
    }
    const double warm_s = std::chrono::duration<double>(Clock::now() - t_warm).count();
    if (rep == 0 || warm_s < r.engine_warm_s) r.engine_warm_s = warm_s;

    // v3 warm start, same consumer, same rep: any machine-state swing hits
    // the v2 and v3 columns alike, so their ratio isolates the format cost.
    const auto t_v3 = Clock::now();
    {
      graph::Snapshot snap;
      if (!snap.open(v3_path, &error)) {
        std::fprintf(stderr, "v3 snapshot open failed: %s\n", error.c_str());
        std::exit(1);
      }
      const core::CascadeEngine warm3(snap, seed, graph::SnapshotLoad::kWarm);
      sink += warm3.mis_size();
    }
    const double v3_s = std::chrono::duration<double>(Clock::now() - t_v3).count();
    if (rep == 0 || v3_s < r.engine_warm_v3_s) r.engine_warm_v3_s = v3_s;
  }
  r.warm_speedup = r.engine_warm_s > 0 ? r.engine_cold_s / r.engine_warm_s : 0;
  r.v3_warm_ratio =
      r.engine_warm_s > 0 ? r.engine_warm_v3_s / r.engine_warm_s : 0;

  // The parallel adoption path: open + DynamicGraph::load with --loaders
  // threads adopting disjoint shard stripes. Equality-checked below.
  graph::DynamicGraph loaded3;
  r.v3_load_s = min_seconds(reps, [&] {
    graph::Snapshot snap;
    if (!snap.open(v3_path, &error)) {
      std::fprintf(stderr, "v3 snapshot open failed: %s\n", error.c_str());
      std::exit(1);
    }
    loaded3 = graph::DynamicGraph::load(snap, loaders);
  });
  if (!(loaded3 == g)) {
    std::fprintf(stderr, "v3 parallel-load mismatch at n=%u\n", n);
    std::exit(1);
  }

  // Correctness pin outside the timed region: the warm start must equal the
  // greedy recompute over the same persisted keys, node for node.
  {
    graph::Snapshot snap;
    if (!snap.open(v2_path, &error)) {
      std::fprintf(stderr, "v2 snapshot open failed: %s\n", error.c_str());
      std::exit(1);
    }
    const core::CascadeEngine warm(snap, seed, graph::SnapshotLoad::kWarm);
    const core::CascadeEngine coldkeys(snap, seed, graph::SnapshotLoad::kColdKeys);
    if (warm.mis_size() != coldkeys.mis_size() ||
        !(warm.membership() == coldkeys.membership())) {
      std::fprintf(stderr, "warm-vs-cold state mismatch at n=%u\n", n);
      std::exit(1);
    }
    sink += warm.mis_size();
  }

  // v2-vs-v3 differential pin: same membership, same |MIS|, and the SAME
  // post-restart RNG state — one continuation op must re-decide identically
  // on both, or the v3 path silently forked the persisted fill stream.
  {
    graph::Snapshot s2, s3;
    if (!s2.open(v2_path, &error) || !s3.open(v3_path, &error)) {
      std::fprintf(stderr, "v2/v3 pin open failed: %s\n", error.c_str());
      std::exit(1);
    }
    core::CascadeEngine w2(s2, seed, graph::SnapshotLoad::kWarm);
    core::CascadeEngine w3(s3, seed, graph::SnapshotLoad::kWarm);
    if (w2.mis_size() != w3.mis_size() ||
        !(w2.membership() == w3.membership())) {
      std::fprintf(stderr, "v2-vs-v3 warm state mismatch at n=%u\n", n);
      std::exit(1);
    }
    (void)w2.add_node();
    (void)w3.add_node();
    if (!(w2.membership() == w3.membership())) {
      std::fprintf(stderr, "v2-vs-v3 RNG continuation mismatch at n=%u\n", n);
      std::exit(1);
    }
    sink += w2.mis_size();
  }
  if (sink == 0) std::fprintf(stderr, "(empty MIS — suspicious)\n");

  std::filesystem::remove(trace_path);
  std::filesystem::remove(snap_path);
  std::filesystem::remove(v2_path);
  std::filesystem::remove(v3_path);
  return r;
}

bool validate(const std::vector<Result>& results) {
  // Self-check behind --validate: the same rules scripts/validate_bench.py
  // applies to the emitted JSON (non-empty, positive sizes and timings,
  // positive speedup), enforced on the in-memory rows before writing.
  if (results.empty()) {
    std::fprintf(stderr, "validate: no results\n");
    return false;
  }
  for (const Result& r : results) {
    const bool ok = r.n >= 2 && r.edges > 0 && r.snapshot_bytes > 0 &&
                    r.trace_bytes > 0 && r.rebuild_s > 0 && r.rebuild_tuned_s > 0 &&
                    r.save_s > 0 && r.open_s >= 0 && r.load_s > 0 &&
                    r.speedup_vs_rebuild > 0 && r.engine_cold_s > 0 &&
                    r.engine_warm_s > 0 && r.warm_speedup > 0 &&
                    r.borrow_open_s > 0 && r.borrow_first_op_s > 0 &&
                    r.borrow_speedup > 0 && r.engine_warm_v3_s > 0 &&
                    r.v3_warm_ratio > 0 && r.v3_loaders >= 1 && r.v3_load_s > 0;
    if (!ok) {
      std::fprintf(stderr, "validate: malformed row at n=%u\n", r.n);
      return false;
    }
  }
  return true;
}

bool write_json(const std::string& path, const std::vector<Result>& results,
                double deg, std::uint64_t seed, int reps) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"snapshot\",\n");
  std::fprintf(f, "  \"config\": {\"deg\": %.1f, \"seed\": %llu, \"reps\": %d},\n", deg,
               static_cast<unsigned long long>(seed), reps);
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(f,
                 "    {\"n\": %u, \"edges\": %llu, \"snapshot_bytes\": %llu, "
                 "\"trace_bytes\": %llu, \"rebuild_s\": %.6f, "
                 "\"rebuild_tuned_s\": %.6f, \"save_s\": %.6f, "
                 "\"open_s\": %.6f, \"load_s\": %.6f, \"speedup_vs_rebuild\": %.2f, "
                 "\"engine_cold_s\": %.6f, \"engine_warm_s\": %.6f, "
                 "\"warm_speedup\": %.2f, \"borrow_open_s\": %.6f, "
                 "\"borrow_first_op_s\": %.6f, \"borrow_speedup\": %.2f, "
                 "\"engine_warm_v3_s\": %.6f, \"v3_warm_ratio\": %.3f, "
                 "\"v3_loaders\": %u, \"v3_load_s\": %.6f}%s\n",
                 r.n, static_cast<unsigned long long>(r.edges),
                 static_cast<unsigned long long>(r.snapshot_bytes),
                 static_cast<unsigned long long>(r.trace_bytes), r.rebuild_s,
                 r.rebuild_tuned_s, r.save_s, r.open_s, r.load_s,
                 r.speedup_vs_rebuild, r.engine_cold_s, r.engine_warm_s,
                 r.warm_speedup, r.borrow_open_s, r.borrow_first_op_s,
                 r.borrow_speedup, r.engine_warm_v3_s, r.v3_warm_ratio,
                 r.v3_loaders, r.v3_load_s, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 42;
  double deg = 8.0;
  int reps = 3;
  unsigned loaders = 1;
  std::vector<NodeId> sizes = {10'000, 100'000, 1'000'000};
  std::string out = "BENCH_snapshot.json";
  std::string dir = std::filesystem::temp_directory_path().string();
  bool validate_flag = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--seed") seed = std::strtoull(next(), nullptr, 10);
    else if (arg == "--deg") deg = std::strtod(next(), nullptr);
    else if (arg == "--reps") reps = static_cast<int>(std::strtol(next(), nullptr, 10));
    else if (arg == "--loaders") {
      loaders = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
      if (loaders < 1) loaders = 1;
    }
    else if (arg == "--out") out = next();
    else if (arg == "--dir") dir = next();
    else if (arg == "--validate") validate_flag = true;
    else if (arg == "--sizes") {
      sizes.clear();
      const char* s = next();
      while (*s != '\0') {
        char* end = nullptr;
        const unsigned long parsed = std::strtoul(s, &end, 10);
        if (end == s || parsed < 2) {
          std::fprintf(stderr, "--sizes wants a comma-separated list of node counts >= 2\n");
          return 2;
        }
        sizes.push_back(static_cast<NodeId>(parsed));
        s = *end == ',' ? end + 1 : end;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--sizes a,b,c] [--deg D] [--seed S] [--reps R] "
                   "[--loaders L] [--dir TMP] [--out F] [--validate]\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<Result> results;
  for (const NodeId n : sizes) {
    const Result r = run_size(n, deg, seed, reps, loaders, dir);
    results.push_back(r);
    std::printf("n=%-8u edges=%-8llu rebuild=%8.4fs (tuned %8.4fs) save=%8.4fs "
                "open=%.6fs load=%8.4fs  speedup=%.1fx\n",
                r.n, static_cast<unsigned long long>(r.edges), r.rebuild_s,
                r.rebuild_tuned_s, r.save_s, r.open_s, r.load_s,
                r.speedup_vs_rebuild);
    std::printf("            engine-ready cold=%8.4fs warm=%8.4fs  warm-speedup=%.1fx\n",
                r.engine_cold_s, r.engine_warm_s, r.warm_speedup);
    std::printf("            borrowed open+query=%.6fs first-op=%.6fs  "
                "borrow-speedup=%.1fx\n",
                r.borrow_open_s, r.borrow_first_op_s, r.borrow_speedup);
    std::printf("            v3 warm=%8.4fs (%.2fx of v2)  "
                "v3-load(%u loaders)=%8.4fs\n",
                r.engine_warm_v3_s, r.v3_warm_ratio, r.v3_loaders, r.v3_load_s);
    std::fflush(stdout);
  }
  if (validate_flag && !validate(results)) return 1;
  return write_json(out, results, deg, seed, reps) ? 0 : 1;
}
