// E1 — Theorem 1: E[|S|] ≤ 1 for every topology change.
//
// For each change type and each (n, avg-degree) configuration, applies one
// fixed change to a fixed random graph under many independent random orders
// (fresh priority seeds) and reports the empirical E[|S|], E[Σ|S_i|]
// (state updates of the direct implementation), E[levels], E[adjustments]
// and the largest |S| seen. The paper predicts E[|S|] ≤ 1 for all rows.
#include <iostream>

#include "core/template_engine.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace dmis;
using core::TemplateEngine;
using core::TemplateReport;
using util::OnlineStats;

struct Row {
  OnlineStats s_size;
  OnlineStats memberships;
  OnlineStats levels;
  OnlineStats adjustments;
  std::uint64_t max_s = 0;

  void add(const TemplateReport& rep) {
    s_size.add(static_cast<double>(rep.s_distinct));
    memberships.add(static_cast<double>(rep.s_memberships));
    levels.add(static_cast<double>(rep.levels));
    adjustments.add(static_cast<double>(rep.adjustments));
    max_s = std::max(max_s, rep.s_distinct);
  }
};

template <typename ChangeFn>
Row measure(const graph::DynamicGraph& g, int trials, ChangeFn&& change) {
  Row row;
  for (int t = 0; t < trials; ++t) {
    TemplateEngine engine(g, 10'000 + static_cast<std::uint64_t>(t) * 13);
    row.add(change(engine));
  }
  return row;
}

void emit(util::Table& table, const char* change, graph::NodeId n, double deg,
          const Row& row) {
  table.row()
      .cell(std::string(change))
      .cell(static_cast<std::uint64_t>(n))
      .cell(deg, 0)
      .cell_pm(row.s_size.mean(), row.s_size.ci95())
      .cell(row.adjustments.mean(), 3)
      .cell(row.memberships.mean(), 3)
      .cell(row.levels.mean(), 3)
      .cell(row.max_s);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto trials = static_cast<int>(cli.flag_int("trials", 300, "orders per row"));
  const auto scale = cli.flag_double("scale", 1.0, "multiplier on graph sizes");
  cli.finish();

  std::cout << "# E1 — Theorem 1: expected |S| per topology change (paper: ≤ 1)\n";

  util::Table table({"change", "n", "avg deg", "E[|S|] ± 95%", "E[adj]",
                     "E[Σ|S_i|]", "E[levels]", "max |S|"});

  const std::vector<graph::NodeId> sizes = {
      static_cast<graph::NodeId>(100 * scale), static_cast<graph::NodeId>(400 * scale),
      static_cast<graph::NodeId>(1600 * scale)};
  for (const graph::NodeId n : sizes) {
    for (const double deg : {5.0, 20.0}) {
      util::Rng rng(n * 7 + static_cast<std::uint64_t>(deg));
      const auto g = graph::random_avg_degree(n, deg, rng);

      // Edge insertion between two fixed non-adjacent nodes.
      graph::NodeId a = 0;
      graph::NodeId b = 1;
      while (g.has_edge(a, b)) ++b;
      emit(table, "edge-insert", n, deg, measure(g, trials, [a, b](TemplateEngine& e) {
             return e.add_edge(a, b);
           }));

      // Edge deletion of a fixed existing edge.
      const auto edges = g.edges();
      const auto [eu, ev] = edges[edges.size() / 2];
      emit(table, "edge-delete", n, deg,
           measure(g, trials, [eu = eu, ev = ev](TemplateEngine& e) {
             return e.remove_edge(eu, ev);
           }));

      // Node insertion with a fixed attachment list.
      std::vector<graph::NodeId> attach;
      for (graph::NodeId v = 0; v < n; v += n / 8) attach.push_back(v);
      emit(table, "node-insert", n, deg, measure(g, trials, [&attach](TemplateEngine& e) {
             e.add_node(attach);
             return e.last_report();
           }));

      // Node deletion of a fixed node.
      const graph::NodeId victim = n / 2;
      emit(table, "node-delete", n, deg, measure(g, trials, [victim](TemplateEngine& e) {
             return e.remove_node(victim);
           }));
    }
  }
  table.print(std::cout);

  // The heavy-tailed witness: the star. E[|S|] = 1 exactly, max |S| = n.
  std::cout << "\n# E1b — star-center deletion: E[|S|] = 1 but the tail is Θ(n)\n";
  util::Table star_table({"n", "E[|S|] ± 95%", "P(|S| = n)", "max |S|"});
  for (const graph::NodeId n : {32U, 128U, 512U}) {
    const auto g = graph::star(n);
    OnlineStats s_size;
    std::uint64_t full_flips = 0;
    std::uint64_t max_s = 0;
    const int star_trials = trials * 10;
    for (int t = 0; t < star_trials; ++t) {
      TemplateEngine engine(g, 999 + static_cast<std::uint64_t>(t));
      const auto rep = engine.remove_node(0);
      s_size.add(static_cast<double>(rep.s_distinct));
      full_flips += rep.s_distinct == n ? 1 : 0;
      max_s = std::max(max_s, rep.s_distinct);
    }
    star_table.row()
        .cell(static_cast<std::uint64_t>(n))
        .cell_pm(s_size.mean(), s_size.ci95())
        .cell(static_cast<double>(full_flips) / star_trials, 4)
        .cell(max_s);
  }
  star_table.print(std::cout);
  std::cout << "\n(expected P(|S|=n) = 1/n: the deleted center was the MIS)\n";
  return 0;
}
