// E15 — distributed per-change cost at scale: Theorem 7's measures sweep
// n ∈ {1e3, 1e4, 1e5, 1e6} over four workload mixes, on the flat simulated
// broadcast network.
//
// Workloads (all valid-by-construction streams from workload::ChurnGenerator
// against an avg-degree-8 random base graph):
//   * churn         — balanced insert/delete mix, half the deletions abrupt;
//   * insert-heavy  — mostly edge/node insertions into a growing graph;
//   * delete-heavy  — mostly removals from a warm graph;
//   * abrupt-delete — node-deletion-heavy with every deletion abrupt
//                     (the Lemma 13 stress case).
//
// Every change's CostReport is recorded and bucketed by the paper's bound
// classes: "graceful" holds the change types with O(1) expected broadcasts
// (edge insertion, edge deletion in both modes, graceful node deletion,
// unmuting — Lemmas 9/10), "node_insert" the O(d(v*)) insertions, and
// "abrupt_node_delete" the O(min{log n, d(v*)}) abrupt deletions, for which
// the mean of that envelope over the observed victims is also emitted. The
// output JSON (default BENCH_distributed_cost.json) carries full percentile
// tails for every measure plus the per-bucket means — flat-across-n graceful
// columns are the paper's O(1) claims made machine-checkable; future PRs
// quote this file alongside BENCH_update_latency.json.
//
// The engine is verified against the sequential random-greedy oracle once
// per cell (after the stream), so a full sweep doubles as a correctness run
// at 10^6 nodes.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/dist_mis.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "workload/distributed.hpp"

namespace {

using namespace dmis;
using graph::NodeId;
using workload::OpKind;

struct MetricSummary {
  double mean = 0, p50 = 0, p95 = 0, p99 = 0, max = 0;
};

struct BucketSummary {
  std::uint64_t count = 0;
  double rounds = 0, broadcasts = 0, bits = 0, adjustments = 0;
  double degree = 0;    // node ops: mean d(v*)
  double envelope = 0;  // abrupt deletions: mean min{log2 n, d(v*)}
};

struct Result {
  std::string workload;
  NodeId n = 0;
  std::uint64_t ops = 0;
  double seconds = 0;
  sim::CostReport total;  ///< whole-stream accumulation, emitted via to_json()
  MetricSummary rounds, broadcasts, messages, bits, adjustments;
  BucketSummary graceful, node_insert, abrupt_node_delete;
};

MetricSummary summarize(std::vector<std::uint64_t>& xs) {
  MetricSummary m;
  if (xs.empty()) return m;
  double total = 0;
  for (const auto x : xs) total += static_cast<double>(x);
  m.mean = total / static_cast<double>(xs.size());
  std::sort(xs.begin(), xs.end());
  const auto at = [&xs](double p) {
    const auto idx = static_cast<std::size_t>(p * static_cast<double>(xs.size() - 1));
    return static_cast<double>(xs[idx]);
  };
  m.p50 = at(0.50);
  m.p95 = at(0.95);
  m.p99 = at(0.99);
  m.max = static_cast<double>(xs.back());
  return m;
}

struct BucketAccum {
  std::uint64_t count = 0;
  double rounds = 0, broadcasts = 0, bits = 0, adjustments = 0;
  double degree = 0, envelope = 0;

  void add(const workload::CostSample& s, double env) {
    ++count;
    rounds += static_cast<double>(s.cost.rounds);
    broadcasts += static_cast<double>(s.cost.broadcasts);
    bits += static_cast<double>(s.cost.bits);
    adjustments += static_cast<double>(s.cost.adjustments);
    degree += static_cast<double>(s.degree);
    envelope += env;
  }

  [[nodiscard]] BucketSummary summary() const {
    BucketSummary b;
    b.count = count;
    if (count == 0) return b;
    const auto c = static_cast<double>(count);
    b.rounds = rounds / c;
    b.broadcasts = broadcasts / c;
    b.bits = bits / c;
    b.adjustments = adjustments / c;
    b.degree = degree / c;
    b.envelope = envelope / c;
    return b;
  }
};

workload::ChurnConfig workload_config(const std::string& name) {
  workload::ChurnConfig cfg;
  if (name == "churn") {
    cfg = {0.35, 0.35, 0.15, 0.15, 3, 0.5, 0.1};
  } else if (name == "insert-heavy") {
    cfg = {0.60, 0.10, 0.25, 0.05, 4, 0.5, 0.1};
  } else if (name == "delete-heavy") {
    cfg = {0.10, 0.60, 0.05, 0.25, 4, 0.5, 0.0};
  } else {  // abrupt-delete: every deletion abrupt, node-deletion heavy
    cfg = {0.25, 0.25, 0.15, 0.35, 4, 1.0, 0.0};
  }
  return cfg;
}

Result run_cell(const std::string& workload, NodeId n, double deg, std::uint64_t ops,
                std::uint64_t seed, bool verify) {
  util::Rng graph_rng(seed ^ (static_cast<std::uint64_t>(n) * 0x9e37U));
  const auto g = graph::random_avg_degree(n, deg, graph_rng);
  core::DistMis mis(g, seed * 31 + n);
  workload::ChurnGenerator gen(g, workload_config(workload), seed * 17 + 5);

  std::vector<std::uint64_t> rounds, broadcasts, messages, bits, adjustments;
  rounds.reserve(ops);
  broadcasts.reserve(ops);
  messages.reserve(ops);
  bits.reserve(ops);
  adjustments.reserve(ops);
  BucketAccum graceful, node_insert, abrupt_delete;
  const double log_n = std::log2(std::max<double>(2.0, static_cast<double>(n)));

  sim::CostReport total;
  const auto t0 = std::chrono::steady_clock::now();
  workload::stream_churn(mis, gen, ops, [&](const workload::CostSample& s) {
    total += s.cost;
    rounds.push_back(s.cost.rounds);
    broadcasts.push_back(s.cost.broadcasts);
    messages.push_back(s.cost.messages);
    bits.push_back(s.cost.bits);
    adjustments.push_back(s.cost.adjustments);
    switch (s.kind) {
      case OpKind::kAddNode:
        node_insert.add(s, 0);
        break;
      case OpKind::kRemoveNodeAbrupt:
        abrupt_delete.add(s, std::min(log_n, static_cast<double>(s.degree)));
        break;
      default:
        graceful.add(s, 0);
        break;
    }
  });
  const auto t1 = std::chrono::steady_clock::now();
  if (verify) mis.verify();

  Result r;
  r.workload = workload;
  r.n = n;
  r.ops = ops;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.total = total;
  r.rounds = summarize(rounds);
  r.broadcasts = summarize(broadcasts);
  r.messages = summarize(messages);
  r.bits = summarize(bits);
  r.adjustments = summarize(adjustments);
  r.graceful = graceful.summary();
  r.node_insert = node_insert.summary();
  r.abrupt_node_delete = abrupt_delete.summary();
  return r;
}

void write_metric(std::FILE* f, const char* name, const MetricSummary& m,
                  const char* trailer) {
  std::fprintf(f,
               "      \"%s\": {\"mean\": %.4f, \"p50\": %.0f, \"p95\": %.0f, "
               "\"p99\": %.0f, \"max\": %.0f}%s\n",
               name, m.mean, m.p50, m.p95, m.p99, m.max, trailer);
}

bool write_json(const std::string& path, const std::vector<Result>& results,
                double deg, std::uint64_t seed) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"distributed_cost\",\n");
  std::fprintf(f,
               "  \"config\": {\"deg\": %.1f, \"seed\": %llu, "
               "\"hardware_concurrency\": %u},\n",
               deg, static_cast<unsigned long long>(seed),
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(f, "    {\"workload\": \"%s\", \"n\": %u, \"ops\": %llu, "
                 "\"seconds\": %.3f,\n",
                 r.workload.c_str(), r.n, static_cast<unsigned long long>(r.ops),
                 r.seconds);
    std::fprintf(f, "      \"total\": %s,\n", r.total.to_json().c_str());
    write_metric(f, "rounds", r.rounds, ",");
    write_metric(f, "broadcasts", r.broadcasts, ",");
    write_metric(f, "messages", r.messages, ",");
    write_metric(f, "bits", r.bits, ",");
    write_metric(f, "adjustments", r.adjustments, ",");
    const BucketSummary& g = r.graceful;
    std::fprintf(f,
                 "      \"graceful\": {\"count\": %llu, \"mean_rounds\": %.4f, "
                 "\"mean_broadcasts\": %.4f, \"mean_bits\": %.2f, "
                 "\"mean_adjustments\": %.4f},\n",
                 static_cast<unsigned long long>(g.count), g.rounds, g.broadcasts,
                 g.bits, g.adjustments);
    const BucketSummary& ni = r.node_insert;
    std::fprintf(f,
                 "      \"node_insert\": {\"count\": %llu, \"mean_broadcasts\": %.4f, "
                 "\"mean_degree\": %.4f, \"mean_adjustments\": %.4f},\n",
                 static_cast<unsigned long long>(ni.count), ni.broadcasts, ni.degree,
                 ni.adjustments);
    const BucketSummary& ad = r.abrupt_node_delete;
    std::fprintf(f,
                 "      \"abrupt_node_delete\": {\"count\": %llu, "
                 "\"mean_broadcasts\": %.4f, \"mean_degree\": %.4f, "
                 "\"mean_envelope\": %.4f, \"mean_adjustments\": %.4f}}%s\n",
                 static_cast<unsigned long long>(ad.count), ad.broadcasts, ad.degree,
                 ad.envelope, ad.adjustments, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

bool validate(const std::vector<Result>& results) {
  // Self-check behind --validate: the same distributed_cost rules
  // scripts/validate_bench.py applies to the emitted JSON, enforced on the
  // in-memory rows before writing.
  if (results.empty()) {
    std::fprintf(stderr, "validate: no results\n");
    return false;
  }
  for (const Result& r : results) {
    bool ok = r.ops > 0 && r.graceful.count > 0;
    for (const MetricSummary* m :
         {&r.rounds, &r.broadcasts, &r.messages, &r.bits, &r.adjustments})
      ok = ok && m->mean >= 0 && m->p50 <= m->p95 && m->p95 <= m->p99 &&
           m->p99 <= m->max;
    for (const BucketSummary* b : {&r.graceful, &r.node_insert, &r.abrupt_node_delete})
      ok = ok && b->rounds >= 0 && b->broadcasts >= 0 && b->adjustments >= 0;
    if (!ok) {
      std::fprintf(stderr, "validate: malformed row (%s, n=%u)\n",
                   r.workload.c_str(), r.n);
      return false;
    }
  }
  return true;
}

std::vector<std::string> split_list(const std::string& list) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > start) out.push_back(list.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto ops = static_cast<std::uint64_t>(
      cli.flag_int("ops", 2'000, "topology changes per (workload, n) cell"));
  const auto seed = static_cast<std::uint64_t>(cli.flag_int("seed", 42, "base seed"));
  const auto deg = cli.flag_double("deg", 8.0, "average degree of the base graph");
  const auto sizes_flag =
      cli.flag_string("sizes", "1000,10000,100000,1000000", "node counts, comma-separated");
  const auto workloads_flag =
      cli.flag_string("workloads", "churn,insert-heavy,delete-heavy,abrupt-delete",
                      "workload mixes, comma-separated");
  const bool verify =
      cli.flag_bool("verify", true, "check each cell against the greedy oracle");
  const auto out = cli.flag_string("out", "BENCH_distributed_cost.json",
                                   "machine-readable output path");
  const bool validate_flag = cli.flag_bool(
      "validate", false, "self-check result rows (validate_bench.py rules)");
  cli.finish();

  std::vector<NodeId> sizes;
  for (const std::string& token : split_list(sizes_flag)) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0' || parsed < 2) {
      std::fprintf(stderr, "--sizes wants a comma-separated list of node counts >= 2\n");
      return 2;
    }
    sizes.push_back(static_cast<NodeId>(parsed));
  }
  const std::vector<std::string> workloads = split_list(workloads_flag);

  std::vector<Result> results;
  for (const std::string& workload : workloads) {
    for (const NodeId n : sizes) {
      const Result r = run_cell(workload, n, deg, ops, seed, verify);
      results.push_back(r);
      std::printf(
          "%-13s n=%-8u ops=%-6llu %6.2fs  graceful: bcast=%.2f adj=%.2f rounds=%.2f"
          "  abrupt-del: bcast=%.2f env=%.2f (x%llu)\n",
          r.workload.c_str(), r.n, static_cast<unsigned long long>(r.ops), r.seconds,
          r.graceful.broadcasts, r.graceful.adjustments, r.graceful.rounds,
          r.abrupt_node_delete.broadcasts, r.abrupt_node_delete.envelope,
          static_cast<unsigned long long>(r.abrupt_node_delete.count));
      std::fflush(stdout);
    }
  }
  if (validate_flag && !validate(results)) return 1;
  return write_json(out, results, deg, seed) ? 0 : 1;
}
