// bench_replication — what log shipping costs while the leader serves, and
// what failover costs when it dies.
//
// One cell per fsync policy (same workload, same n): ingest a deterministic
// churn stream through a leader MisService while a LogShipper (loss-free
// in-process transport, durable cursor attached) pumps every batch into a
// FollowerService that tail-applies. After the stream, the leader is
// dropped WITHOUT close() — crash-shaped directory — and the follower
// drains the dead leader's disk and is promoted. Reported per cell:
//
//   ingest_ops_per_sec    leader throughput with shipping interleaved — the
//                         replication tax on the serving path,
//   mean_lag_ops / max_lag_ops
//                         replication lag sampled after every batch
//                         (leader lsn − follower applied lsn). The durable
//                         cursor makes this the fsync policy's visible
//                         footprint: everyop/everybatch pin it at 0, the
//                         interval policy trades lag for throughput.
//                         Deterministic in ops — gated bit-identical.
//   shipped_bytes / shipments / wal_bytes
//                         wire cost of replication vs. the log it carries
//                         (deterministic; gated bit-identical),
//   catchup_s             final drain of the dead leader's directory —
//                         what remained unshipped at the moment of death,
//   failover_rto_s        FollowerService::promote — final poll + WAL
//                         re-base; O(state handoff), independent of history.
//
// The promoted engine is compared against a never-crashed reference fed the
// same stream (membership + RNG state) outside the timed region, so every
// cell that exists has survived the failover differential check.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/batch.hpp"
#include "core/cascade_engine.hpp"
#include "graph/generators.hpp"
#include "service/replication.hpp"
#include "service/service.hpp"
#include "util/rng.hpp"
#include "workload/batched.hpp"
#include "workload/churn.hpp"
#include "workload/trace.hpp"

namespace {

using namespace dmis;
using graph::NodeId;
using Clock = std::chrono::steady_clock;

struct Result {
  std::string policy;
  NodeId n = 0;
  std::uint64_t ops = 0;
  double ingest_s = 0;
  double ingest_ops_per_sec = 0;
  std::uint64_t wal_bytes = 0;
  std::uint64_t shipped_bytes = 0;
  std::uint64_t shipments = 0;
  std::uint64_t applied_ops = 0;   // follower ops applied end to end
  double mean_lag_ops = 0;         // deterministic in ops
  std::uint64_t max_lag_ops = 0;   // deterministic in ops
  double catchup_s = 0;            // min over reps
  double failover_rto_s = 0;       // min over reps
  std::uint64_t promoted_lsn = 0;
};

std::vector<core::Batch> make_stream(NodeId n, double deg, std::uint64_t seed,
                                     std::uint64_t total_ops, std::size_t ops_per_batch) {
  util::Rng rng(seed);
  graph::DynamicGraph g = graph::random_avg_degree(n, deg, rng);
  const workload::Trace grow = workload::grow_trace(g);
  workload::ChurnConfig config;
  config.p_abrupt = 0.4;
  workload::ChurnGenerator gen(g, config, seed + 1);

  std::vector<core::Batch> out;
  core::Batch current;
  const auto flush = [&] {
    if (!current.empty()) {
      out.push_back(current);
      current.clear();
    }
  };
  std::uint64_t ops = 0;
  for (const workload::GraphOp& op : grow) {
    workload::append_op(current, op);
    ++ops;
    if (current.size() >= ops_per_batch) flush();
  }
  while (ops < total_ops) {
    workload::append_op(current, gen.next());
    ++ops;
    if (current.size() >= ops_per_batch) flush();
  }
  flush();
  return out;
}

bool parse_policy(const std::string& name, service::FsyncPolicy& out) {
  if (name == "everyop") out = service::FsyncPolicy::kEveryOp;
  else if (name == "everybatch") out = service::FsyncPolicy::kEveryBatch;
  else if (name == "interval") out = service::FsyncPolicy::kInterval;
  else return false;
  return true;
}

Result run_rep(const std::vector<core::Batch>& stream, const std::string& policy,
               NodeId n, std::uint64_t seed, const std::filesystem::path& dir,
               const core::CascadeEngine& want) {
  Result r;
  r.policy = policy;
  r.n = n;
  for (const auto& b : stream) r.ops += b.size();

  const std::string leader_dir = (dir / ("bench_repl_leader_" + policy)).string();
  const std::string follower_dir = (dir / ("bench_repl_follower_" + policy)).string();
  std::filesystem::remove_all(leader_dir);
  std::filesystem::remove_all(follower_dir);

  service::ServiceConfig config;
  config.dir = leader_dir;
  config.priority_seed = seed;
  if (!parse_policy(policy, config.fsync)) {
    std::fprintf(stderr, "unknown policy %s\n", policy.c_str());
    std::exit(1);
  }
  std::string error;
  auto leader = service::MisService::open(config, &error);
  if (!leader.has_value()) {
    std::fprintf(stderr, "leader open failed: %s\n", error.c_str());
    std::exit(1);
  }
  service::FollowerOptions follower_options;
  follower_options.priority_seed = seed;
  auto follower =
      service::FollowerService::open(follower_dir, follower_options, &error);
  if (!follower.has_value()) {
    std::fprintf(stderr, "follower open failed: %s\n", error.c_str());
    std::exit(1);
  }
  service::DirectTransport transport(&*follower);
  service::LogShipper shipper(leader_dir, &transport);
  shipper.attach_durable_cursor(&*leader);

  // Ingest with shipping interleaved: one drain-to-idle + poll per batch.
  std::uint64_t lag_sum = 0;
  const auto t0 = Clock::now();
  for (const core::Batch& batch : stream) {
    if (!leader->apply(batch, &error) || !shipper.drain(&error) ||
        !follower->poll(&error)) {
      std::fprintf(stderr, "replicated ingest failed: %s\n", error.c_str());
      std::exit(1);
    }
    const std::uint64_t lag = leader->lsn() - follower->applied_lsn();
    lag_sum += lag;
    if (lag > r.max_lag_ops) r.max_lag_ops = lag;
  }
  r.ingest_s = std::chrono::duration<double>(Clock::now() - t0).count();
  r.ingest_ops_per_sec = r.ingest_s > 0 ? static_cast<double>(r.ops) / r.ingest_s : 0;
  r.mean_lag_ops = static_cast<double>(lag_sum) / static_cast<double>(stream.size());
  r.wal_bytes = leader->wal_bytes_appended();

  // The leader dies mid-service: no close(), no seal. Its directory is the
  // recovery truth; ship whatever it holds, then promote.
  leader.reset();
  shipper.detach_durable_cursor();
  const auto t_catchup = Clock::now();
  if (!shipper.drain(&error) || !follower->poll(&error)) {
    std::fprintf(stderr, "post-crash catch-up failed: %s\n", error.c_str());
    std::exit(1);
  }
  r.catchup_s = std::chrono::duration<double>(Clock::now() - t_catchup).count();
  r.shipped_bytes = shipper.stats().bytes_shipped;
  r.shipments = shipper.stats().shipments;
  r.applied_ops = follower->stats().ops_applied;

  service::ServiceConfig promoted_config;
  promoted_config.dir = follower_dir;
  promoted_config.priority_seed = seed;
  const auto t_promote = Clock::now();
  auto promoted = follower->promote(promoted_config, &error);
  r.failover_rto_s = std::chrono::duration<double>(Clock::now() - t_promote).count();
  if (!promoted.has_value()) {
    std::fprintf(stderr, "promote failed: %s\n", error.c_str());
    std::exit(1);
  }
  r.promoted_lsn = promoted->lsn();

  // Differential pin outside the timed region: the promoted service must be
  // the never-crashed leader, exactly.
  if (r.promoted_lsn != r.ops || promoted->engine().mis_size() != want.mis_size() ||
      !(promoted->engine().membership() == want.membership()) ||
      !(promoted->engine().priorities().rng_state() == want.priorities().rng_state())) {
    std::fprintf(stderr, "promoted state mismatch for policy %s (lsn %llu/%llu)\n",
                 policy.c_str(), static_cast<unsigned long long>(r.promoted_lsn),
                 static_cast<unsigned long long>(r.ops));
    std::exit(1);
  }
  std::filesystem::remove_all(leader_dir);
  std::filesystem::remove_all(follower_dir);
  return r;
}

Result run_cell(const std::vector<core::Batch>& stream, const std::string& policy,
                NodeId n, std::uint64_t seed, int reps,
                const std::filesystem::path& dir,
                const core::CascadeEngine& want) {
  Result best;
  for (int rep = 0; rep < reps; ++rep) {
    Result r = run_rep(stream, policy, n, seed, dir, want);
    if (rep == 0) {
      best = r;
      continue;
    }
    // Deterministic fields must be identical across reps — a drift here is
    // a replication bug, not noise.
    if (r.wal_bytes != best.wal_bytes || r.shipped_bytes != best.shipped_bytes ||
        r.shipments != best.shipments || r.applied_ops != best.applied_ops ||
        r.max_lag_ops != best.max_lag_ops || r.mean_lag_ops != best.mean_lag_ops) {
      std::fprintf(stderr, "nondeterministic replication counts for policy %s\n",
                   policy.c_str());
      std::exit(1);
    }
    if (r.ingest_ops_per_sec > best.ingest_ops_per_sec) {
      best.ingest_ops_per_sec = r.ingest_ops_per_sec;
      best.ingest_s = r.ingest_s;
    }
    if (r.catchup_s < best.catchup_s) best.catchup_s = r.catchup_s;
    if (r.failover_rto_s < best.failover_rto_s) best.failover_rto_s = r.failover_rto_s;
  }
  return best;
}

bool validate(const std::vector<Result>& results) {
  if (results.empty()) {
    std::fprintf(stderr, "validate: no results\n");
    return false;
  }
  for (const Result& r : results) {
    const bool ok = r.n >= 2 && r.ops > 0 && r.ingest_s > 0 &&
                    r.ingest_ops_per_sec > 0 && r.wal_bytes > 0 &&
                    r.shipped_bytes >= r.wal_bytes && r.shipments > 0 &&
                    r.applied_ops == r.ops && r.promoted_lsn == r.ops &&
                    r.mean_lag_ops >= 0 && r.catchup_s >= 0 && r.failover_rto_s > 0;
    if (!ok) {
      std::fprintf(stderr, "validate: malformed row for policy=%s\n",
                   r.policy.c_str());
      return false;
    }
    // Synchronous policies must show zero lag; that is the durable cursor's
    // contract, not a tuning outcome.
    if ((r.policy == "everyop" || r.policy == "everybatch") && r.max_lag_ops != 0) {
      std::fprintf(stderr, "validate: policy %s leaked lag %llu\n", r.policy.c_str(),
                   static_cast<unsigned long long>(r.max_lag_ops));
      return false;
    }
  }
  return true;
}

bool write_json(const std::string& path, const std::vector<Result>& results, NodeId n,
                double deg, std::uint64_t seed, std::uint64_t ops,
                std::size_t ops_per_batch, int reps) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"replication\",\n");
  std::fprintf(f,
               "  \"config\": {\"n\": %u, \"deg\": %.1f, \"seed\": %llu, "
               "\"ops\": %llu, \"batch\": %zu, \"reps\": %d},\n",
               n, deg, static_cast<unsigned long long>(seed),
               static_cast<unsigned long long>(ops), ops_per_batch, reps);
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(f,
                 "    {\"policy\": \"%s\", \"n\": %u, \"ops\": %llu, "
                 "\"ingest_s\": %.6f, \"ingest_ops_per_sec\": %.0f, "
                 "\"wal_bytes\": %llu, \"shipped_bytes\": %llu, "
                 "\"shipments\": %llu, \"applied_ops\": %llu, "
                 "\"mean_lag_ops\": %.4f, \"max_lag_ops\": %llu, "
                 "\"catchup_s\": %.6f, \"failover_rto_s\": %.6f, "
                 "\"promoted_lsn\": %llu}%s\n",
                 r.policy.c_str(), r.n, static_cast<unsigned long long>(r.ops),
                 r.ingest_s, r.ingest_ops_per_sec,
                 static_cast<unsigned long long>(r.wal_bytes),
                 static_cast<unsigned long long>(r.shipped_bytes),
                 static_cast<unsigned long long>(r.shipments),
                 static_cast<unsigned long long>(r.applied_ops), r.mean_lag_ops,
                 static_cast<unsigned long long>(r.max_lag_ops), r.catchup_s,
                 r.failover_rto_s, static_cast<unsigned long long>(r.promoted_lsn),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  NodeId n = 1000;
  double deg = 6.0;
  std::uint64_t seed = 42;
  std::uint64_t ops = 60'000;
  std::size_t batch = 32;
  int reps = 3;
  std::vector<std::string> policies = {"everyop", "everybatch", "interval"};
  std::string out = "BENCH_replication.json";
  std::string dir = std::filesystem::temp_directory_path().string();
  bool validate_flag = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--n") n = static_cast<NodeId>(std::strtoul(next(), nullptr, 10));
    else if (arg == "--deg") deg = std::strtod(next(), nullptr);
    else if (arg == "--seed") seed = std::strtoull(next(), nullptr, 10);
    else if (arg == "--ops") ops = std::strtoull(next(), nullptr, 10);
    else if (arg == "--batch") batch = std::strtoul(next(), nullptr, 10);
    else if (arg == "--reps") reps = static_cast<int>(std::strtol(next(), nullptr, 10));
    else if (arg == "--out") out = next();
    else if (arg == "--dir") dir = next();
    else if (arg == "--validate") validate_flag = true;
    else if (arg == "--policies") {
      policies.clear();
      std::string s = next();
      std::size_t pos = 0;
      while (pos < s.size()) {
        const std::size_t comma = s.find(',', pos);
        policies.push_back(s.substr(pos, comma - pos));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--policies a,b,c] [--n N] [--deg D] [--ops K] "
                   "[--batch B] [--seed S] [--reps R] [--dir TMP] [--out F] "
                   "[--validate]\n",
                   argv[0]);
      return 2;
    }
  }
  if (batch == 0) batch = 1;

  using namespace dmis;
  const auto stream = make_stream(n, deg, seed, ops, batch);
  // The never-crashed reference every promoted follower is pinned against.
  core::CascadeEngine want(seed);
  for (const core::Batch& b : stream) (void)core::apply_batch(want, b);

  std::vector<Result> results;
  for (const std::string& policy : policies) {
    const Result r = run_cell(stream, policy, n, seed, reps, dir, want);
    results.push_back(r);
    std::printf("policy=%-10s ingest=%8.0f ops/s  wal=%-9llu shipped=%-9llu "
                "(%llu shipments)  lag mean=%.1f max=%-5llu catchup=%.6fs "
                "rto=%.6fs\n",
                r.policy.c_str(), r.ingest_ops_per_sec,
                static_cast<unsigned long long>(r.wal_bytes),
                static_cast<unsigned long long>(r.shipped_bytes),
                static_cast<unsigned long long>(r.shipments), r.mean_lag_ops,
                static_cast<unsigned long long>(r.max_lag_ops), r.catchup_s,
                r.failover_rto_s);
    std::fflush(stdout);
  }
  if (validate_flag && !validate(results)) return 1;
  return write_json(out, results, n, deg, seed, ops, batch, reps) ? 0 : 1;
}
