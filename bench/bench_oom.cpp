// bench_oom — demonstrates beyond-RAM operation: with the process heap
// capped below the graph's materialized footprint (setrlimit RLIMIT_DATA),
// a materialized DynamicGraph::load MUST fail with bad_alloc while the
// borrowed path — shallow Snapshot::open + DynamicGraph::borrow — opens,
// answers a query sweep, and absorbs a churn workload, all inside the cap.
//
// Why the cap distinguishes the two paths: RLIMIT_DATA (Linux >= 4.7)
// counts brk plus private *writable* anonymous mappings — exactly what the
// heap copies of a materialized load are made of — but NOT the read-only
// MAP_PRIVATE file mapping the borrowed graph reads through. The borrowed
// graph's only heap is its overlay (dirty adjacency pool + edge delta),
// which is O(touched set), not O(graph).
//
// Protocol (single process, so both attempts share one machine state):
//   1. uncapped: build G(n, m) at --deg, save the snapshot, precompute the
//      churn/query workload, then free the build state and malloc_trim;
//   2. cap = VmData + --slack-mb (default 48 MB, far below the snapshot);
//   3. materialized attempt: full open + load under the cap — expected to
//      throw bad_alloc (a cell where it loads means the cap did not bind
//      and the gate in scripts/check_bench.py fails the run);
//   4. borrowed attempt: shallow open + borrow + --query-ops random
//      adjacency probes (pages the mapping in on demand) + --churn-ops
//      edge toggles (copy-on-write overlay growth), still under the cap;
//   5. lift the cap, write JSON (committed as BENCH_oom.json, gated by
//      scripts/check_bench.py and shape-checked by validate_bench.py).
#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <new>
#include <string>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>  // malloc_trim
#endif

#include "graph/generators.hpp"
#include "graph/snapshot.hpp"
#include "util/rng.hpp"

namespace {

using namespace dmis;
using graph::NodeId;
using Clock = std::chrono::steady_clock;

/// VmData from /proc/self/status, in bytes: brk + private writable
/// mappings — the quantity RLIMIT_DATA caps. 0 if unreadable.
std::uint64_t vm_data_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  unsigned long long kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr)
    if (std::sscanf(line, "VmData: %llu kB", &kb) == 1) break;
  std::fclose(f);
  return kb * 1024ULL;
}

struct MaterializedRow {
  bool loaded = false;  // gate: must stay false under the cap
  double open_s = 0;    // time to the bad_alloc (or to the load, if it slipped)
  std::string detail;
};

struct BorrowedRow {
  bool loaded = false;  // gate: must be true under the same cap
  double open_s = 0;    // shallow open + borrow + first query
  double query_ops_per_sec = 0;
  double churn_ops_per_sec = 0;
  std::uint64_t resident_bytes = 0;  // snapshot pages faulted in (mincore)
  std::uint64_t mapped_bytes = 0;    // snapshot file size
  std::uint64_t vm_data_bytes = 0;   // heap high-water under the cap
};

}  // namespace

int main(int argc, char** argv) {
  NodeId n = 1'000'000;
  double deg = 6.0;
  std::uint64_t seed = 42;
  std::uint64_t churn_ops = 20'000;
  std::uint64_t query_ops = 100'000;
  std::uint64_t slack_mb = 48;
  std::string out = "BENCH_oom.json";
  std::string dir = std::filesystem::temp_directory_path().string();

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--n") n = static_cast<NodeId>(std::strtoul(next(), nullptr, 10));
    else if (arg == "--deg") deg = std::strtod(next(), nullptr);
    else if (arg == "--seed") seed = std::strtoull(next(), nullptr, 10);
    else if (arg == "--churn-ops") churn_ops = std::strtoull(next(), nullptr, 10);
    else if (arg == "--query-ops") query_ops = std::strtoull(next(), nullptr, 10);
    else if (arg == "--slack-mb") slack_mb = std::strtoull(next(), nullptr, 10);
    else if (arg == "--out") out = next();
    else if (arg == "--dir") dir = next();
    else {
      std::fprintf(stderr,
                   "usage: %s [--n N] [--deg D] [--seed S] [--churn-ops K] "
                   "[--query-ops Q] [--slack-mb MB] [--dir TMP] [--out F]\n",
                   argv[0]);
      return 2;
    }
  }
  if (std::getenv("DMIS_NO_MMAP") != nullptr) {
    // The fallback path buffers the file on heap — under the cap BOTH modes
    // would fail, which proves nothing about the borrowed design.
    std::fprintf(stderr, "bench_oom requires real mmap; unset DMIS_NO_MMAP\n");
    return 2;
  }

  const std::string snap_path =
      (std::filesystem::path(dir) / ("bench_oom_" + std::to_string(n) + ".snap"))
          .string();
  std::string error;

  // Phase 1 — uncapped: build, save, precompute the capped-phase workload
  // (so the capped phase allocates nothing beyond the overlay under test).
  std::uint64_t edge_count = 0;
  std::vector<std::pair<NodeId, NodeId>> churn_edges;
  std::vector<NodeId> query_nodes;
  {
    util::Rng rng(seed);
    graph::DynamicGraph g = graph::random_avg_degree(n, deg, rng);
    edge_count = g.edge_count();
    if (!g.save(snap_path, &error)) {
      std::fprintf(stderr, "snapshot save failed: %s\n", error.c_str());
      return 1;
    }
    churn_edges.reserve(churn_ops);
    g.for_each_edge([&](NodeId u, NodeId v) {
      if (churn_edges.size() < churn_ops) churn_edges.emplace_back(u, v);
    });
    util::Rng qrng(seed + 1);
    query_nodes.reserve(query_ops);
    for (std::uint64_t i = 0; i < query_ops; ++i)
      query_nodes.push_back(static_cast<NodeId>(qrng.next_u64() % n));
  }
#if defined(__GLIBC__)
  malloc_trim(0);  // return freed build-state pages so the cap binds tightly
#endif

  const std::uint64_t snapshot_bytes = std::filesystem::file_size(snap_path);
  const std::uint64_t base_vm = vm_data_bytes();
  const std::uint64_t slack_bytes = slack_mb << 20;
  const std::uint64_t cap_bytes = base_vm + slack_bytes;
  std::printf("heap base=%llu MB  cap=+%llu MB  snapshot=%llu MB (n=%u, m=%llu)\n",
              static_cast<unsigned long long>(base_vm >> 20),
              static_cast<unsigned long long>(slack_mb),
              static_cast<unsigned long long>(snapshot_bytes >> 20), n,
              static_cast<unsigned long long>(edge_count));
  if (slack_bytes >= snapshot_bytes) {
    std::fprintf(stderr,
                 "slack (%llu MB) is not below the snapshot (%llu MB) — the cap "
                 "would prove nothing; raise --n or lower --slack-mb\n",
                 static_cast<unsigned long long>(slack_mb),
                 static_cast<unsigned long long>(snapshot_bytes >> 20));
    return 1;
  }

  // Phase 2 — cap the heap.
  rlimit old_limit{};
  if (getrlimit(RLIMIT_DATA, &old_limit) != 0) {
    std::fprintf(stderr, "getrlimit failed\n");
    return 1;
  }
  rlimit capped = old_limit;
  capped.rlim_cur = cap_bytes;
  if (setrlimit(RLIMIT_DATA, &capped) != 0) {
    std::fprintf(stderr, "setrlimit failed\n");
    return 1;
  }

  // Phase 3 — materialized load under the cap: expected bad_alloc.
  MaterializedRow mat;
  {
    const auto t0 = Clock::now();
    try {
      graph::Snapshot snap;
      if (!snap.open(snap_path, &error)) {
        mat.detail = "open failed: " + error;
      } else {
        graph::DynamicGraph g = graph::DynamicGraph::load(snap);
        mat.loaded = g.edge_count() == edge_count;
        mat.detail = "loaded under the cap (cap did not bind)";
      }
    } catch (const std::bad_alloc&) {
      mat.detail = "bad_alloc";
    }
    mat.open_s = std::chrono::duration<double>(Clock::now() - t0).count();
  }
  std::printf("materialized under cap: %s (%.4fs)\n", mat.detail.c_str(), mat.open_s);

  // Phase 4 — borrowed under the same cap: open, page through queries,
  // absorb churn. All heap growth is overlay.
  BorrowedRow bor;
  bor.mapped_bytes = snapshot_bytes;
  try {
    const auto t0 = Clock::now();
    auto base = std::make_shared<graph::Snapshot>();
    if (!base->open(snap_path, &error, false, graph::SnapshotValidation::kShallow)) {
      std::fprintf(stderr, "shallow open failed under cap: %s\n", error.c_str());
      return 1;
    }
    graph::DynamicGraph g = graph::DynamicGraph::borrow(base);
    std::uint64_t sink = g.degree(0);
    bor.open_s = std::chrono::duration<double>(Clock::now() - t0).count();

    const auto t_q = Clock::now();
    for (const NodeId v : query_nodes) {
      sink += g.degree(v);
      for (const NodeId u : g.neighbors(v)) {
        sink += g.has_edge(v, u) ? 1 : 0;
        break;
      }
    }
    const double q_s = std::chrono::duration<double>(Clock::now() - t_q).count();
    bor.query_ops_per_sec =
        q_s > 0 ? static_cast<double>(query_nodes.size()) / q_s : 0;

    const auto t_c = Clock::now();
    for (const auto& [u, v] : churn_edges) {
      if (!g.remove_edge(u, v) || !g.add_edge(u, v)) {
        std::fprintf(stderr, "borrowed toggle failed under cap\n");
        return 1;
      }
    }
    const double c_s = std::chrono::duration<double>(Clock::now() - t_c).count();
    // 2 graph ops per toggle.
    bor.churn_ops_per_sec =
        c_s > 0 ? static_cast<double>(2 * churn_edges.size()) / c_s : 0;

    bor.loaded = g.edge_count() == edge_count && sink > 0;
    bor.resident_bytes = base->resident_bytes();
    bor.vm_data_bytes = vm_data_bytes();
  } catch (const std::bad_alloc&) {
    std::fprintf(stderr, "borrowed path hit bad_alloc under the cap — the "
                         "overlay outgrew the slack\n");
    bor.loaded = false;
  }
  std::printf("borrowed under cap: %s  open=%.6fs  query=%.0f ops/s  "
              "churn=%.0f ops/s  resident=%llu MB of %llu MB mapped\n",
              bor.loaded ? "ok" : "FAILED", bor.open_s, bor.query_ops_per_sec,
              bor.churn_ops_per_sec,
              static_cast<unsigned long long>(bor.resident_bytes >> 20),
              static_cast<unsigned long long>(bor.mapped_bytes >> 20));

  // Phase 5 — lift the cap, emit JSON.
  if (setrlimit(RLIMIT_DATA, &old_limit) != 0)
    std::fprintf(stderr, "warning: could not restore RLIMIT_DATA\n");
  std::filesystem::remove(snap_path);

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"oom\",\n");
  std::fprintf(f,
               "  \"config\": {\"n\": %u, \"deg\": %.1f, \"seed\": %llu, "
               "\"churn_ops\": %llu, \"query_ops\": %llu, \"slack_bytes\": %llu, "
               "\"cap_bytes\": %llu, \"snapshot_bytes\": %llu, \"edges\": %llu},\n",
               n, deg, static_cast<unsigned long long>(seed),
               static_cast<unsigned long long>(churn_ops),
               static_cast<unsigned long long>(query_ops),
               static_cast<unsigned long long>(slack_bytes),
               static_cast<unsigned long long>(cap_bytes),
               static_cast<unsigned long long>(snapshot_bytes),
               static_cast<unsigned long long>(edge_count));
  std::fprintf(f, "  \"results\": [\n");
  std::fprintf(f,
               "    {\"mode\": \"materialized\", \"loaded\": %s, \"open_s\": %.6f, "
               "\"detail\": \"%s\"},\n",
               mat.loaded ? "true" : "false", mat.open_s, mat.detail.c_str());
  std::fprintf(f,
               "    {\"mode\": \"borrowed\", \"loaded\": %s, \"open_s\": %.6f, "
               "\"query_ops_per_sec\": %.0f, \"churn_ops_per_sec\": %.0f, "
               "\"resident_bytes\": %llu, \"mapped_bytes\": %llu, "
               "\"vm_data_bytes\": %llu}\n",
               bor.loaded ? "true" : "false", bor.open_s, bor.query_ops_per_sec,
               bor.churn_ops_per_sec,
               static_cast<unsigned long long>(bor.resident_bytes),
               static_cast<unsigned long long>(bor.mapped_bytes),
               static_cast<unsigned long long>(bor.vm_data_bytes));
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());
  // The process-level verdict mirrors the check_bench gate so a CI smoke
  // run fails loudly without parsing JSON.
  return (!mat.loaded && bor.loaded) ? 0 : 1;
}
