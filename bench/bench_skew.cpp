// E17 — skewed-graph / adversarial-churn cost sweep: Theorem 7's measures
// on heavy-tailed topologies under hub-targeting churn, the regime where
// min{log n, d(v*)} (Lemma 13) actually separates from d(v*).
//
// Grid: graph distribution x churn policy x n. Distributions:
//   * ba        — Barabási–Albert preferential attachment (attach 4);
//   * chung-lu  — Chung-Lu expected-degree power law (tail exponent 2.5);
//   * planted   — planted partition, 16 communities, assortative;
//   * uniform   — G(n, m) at the same average degree (the control row).
// Policies (workload::SkewedChurnGenerator unless noted):
//   * hub-kill     — repeatedly abrupt-delete the max-degree node, refilling
//                    with preferential inserts (Lemma 13 on hubs);
//   * burst-mute   — delete a whole hub neighborhood back-to-back
//                    (correlated failures, overlapping cascades);
//   * flash-crowd  — insert storms aimed at one hub, sometimes followed by
//                    its abrupt collapse (O(d) insert + min{log n, d} delete);
//   * churn        — workload::ChurnGenerator's balanced uniform mix (the
//                    control column).
//
// Every cell streams its ops through core::DistMis and is verified against
// the sequential random-greedy oracle after the stream — a cell that reaches
// the JSON has been oracle-checked. Costs are bucketed exactly like
// bench_distributed_cost (graceful / node_insert / abrupt_node_delete with
// the mean min{log2 n, d(v*)} envelope), so scripts/check_bench.py gates the
// abrupt bucket against ENVELOPE_SLACK x envelope and the graceful means
// against the committed reference at the deterministic tolerance.
//
// Two observability columns quantify the engine cliffs skew stresses:
// degree_tail (p50/p90/p99/max, Hill tail exponent, fraction of nodes past
// the 14-neighbor inline record) and shard_skew (max/mean edge-endpoint load
// over 8 id-hashed shards — how unbalanced ShardedCascadeEngine's default
// partition would be on this topology).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/dist_mis.hpp"
#include "graph/generators.hpp"
#include "graph/graph_stats.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "workload/distributed.hpp"
#include "workload/skewed.hpp"

namespace {

using namespace dmis;
using graph::NodeId;
using workload::OpKind;

struct MetricSummary {
  double mean = 0, p50 = 0, p95 = 0, p99 = 0, max = 0;
};

struct BucketSummary {
  std::uint64_t count = 0;
  double rounds = 0, broadcasts = 0, bits = 0, adjustments = 0;
  double degree = 0;    // node ops: mean d(v*)
  double envelope = 0;  // abrupt deletions: mean min{log2 n, d(v*)}
};

struct Result {
  std::string graph;
  std::string policy;
  NodeId n = 0;
  std::uint64_t ops = 0;
  double seconds = 0;
  bool verified = false;
  sim::CostReport total;
  MetricSummary rounds, broadcasts, messages, bits, adjustments;
  BucketSummary graceful, node_insert, abrupt_node_delete;
  graph::DegreeTail tail;   // post-churn topology shape
  double shard_skew = 0;    // max/mean endpoint load over 8 id-hashed shards
};

MetricSummary summarize(std::vector<std::uint64_t>& xs) {
  MetricSummary m;
  if (xs.empty()) return m;
  double total = 0;
  for (const auto x : xs) total += static_cast<double>(x);
  m.mean = total / static_cast<double>(xs.size());
  std::sort(xs.begin(), xs.end());
  const auto at = [&xs](double p) {
    const auto idx = static_cast<std::size_t>(p * static_cast<double>(xs.size() - 1));
    return static_cast<double>(xs[idx]);
  };
  m.p50 = at(0.50);
  m.p95 = at(0.95);
  m.p99 = at(0.99);
  m.max = static_cast<double>(xs.back());
  return m;
}

struct BucketAccum {
  std::uint64_t count = 0;
  double rounds = 0, broadcasts = 0, bits = 0, adjustments = 0;
  double degree = 0, envelope = 0;

  void add(const workload::CostSample& s, double env) {
    ++count;
    rounds += static_cast<double>(s.cost.rounds);
    broadcasts += static_cast<double>(s.cost.broadcasts);
    bits += static_cast<double>(s.cost.bits);
    adjustments += static_cast<double>(s.cost.adjustments);
    degree += static_cast<double>(s.degree);
    envelope += env;
  }

  [[nodiscard]] BucketSummary summary() const {
    BucketSummary b;
    b.count = count;
    if (count == 0) return b;
    const auto c = static_cast<double>(count);
    b.rounds = rounds / c;
    b.broadcasts = broadcasts / c;
    b.bits = bits / c;
    b.adjustments = adjustments / c;
    b.degree = degree / c;
    b.envelope = envelope / c;
    return b;
  }
};

graph::DynamicGraph build_graph(const std::string& name, NodeId n, double deg,
                                util::Rng& rng) {
  if (name == "ba") return graph::barabasi_albert(n, 4, rng);
  if (name == "chung-lu") return graph::chung_lu(n, 2.5, deg, rng);
  if (name == "planted") {
    // 16 communities, ~3/4 of the degree intra-block, p scaled so the
    // average degree tracks `deg` across n.
    const NodeId c = 16;
    const double block = static_cast<double>(n) / static_cast<double>(c);
    const double p_in = std::min(1.0, 0.75 * deg / std::max(1.0, block - 1.0));
    const double p_out =
        std::min(p_in, 0.25 * deg / std::max(1.0, static_cast<double>(n) - block));
    return graph::planted_partition(n, c, p_in, p_out, rng);
  }
  if (name == "uniform") return graph::random_avg_degree(n, deg, rng);
  std::fprintf(stderr, "unknown graph distribution '%s' "
               "(want ba|chung-lu|planted|uniform)\n", name.c_str());
  std::exit(2);
}

/// Max/mean edge-endpoint load across 8 id-hashed shards: 1.0 means the
/// sharded engine's default partition is perfectly balanced on this
/// topology; hub-heavy graphs push it up.
double shard_skew_of(const graph::DynamicGraph& g) {
  constexpr std::size_t kShards = 8;
  std::uint64_t load[kShards] = {};
  g.for_each_node([&](NodeId v) { load[v % kShards] += g.degree(v); });
  std::uint64_t max_load = 0, sum = 0;
  for (const std::uint64_t l : load) {
    max_load = std::max(max_load, l);
    sum += l;
  }
  if (sum == 0) return 1.0;
  return static_cast<double>(max_load) * kShards / static_cast<double>(sum);
}

Result run_cell(const std::string& graph_name, const std::string& policy, NodeId n,
                double deg, std::uint64_t ops, std::uint64_t seed, bool verify) {
  util::Rng graph_rng(seed ^ (static_cast<std::uint64_t>(n) * 0x9e37U));
  const auto g = build_graph(graph_name, n, deg, graph_rng);
  core::DistMis mis(g, seed * 31 + n);

  std::unique_ptr<workload::TraceGenerator> gen;
  if (policy == "churn") {
    workload::ChurnConfig cfg{0.35, 0.35, 0.15, 0.15, 3, 0.5, 0.1};
    gen = std::make_unique<workload::ChurnGenerator>(g, cfg, seed * 17 + 5);
  } else {
    workload::SkewedChurnConfig cfg;
    if (policy == "hub-kill") {
      cfg.policy = workload::ChurnPolicy::kHubKill;
    } else if (policy == "burst-mute") {
      cfg.policy = workload::ChurnPolicy::kBurstMute;
    } else if (policy == "flash-crowd") {
      cfg.policy = workload::ChurnPolicy::kFlashCrowd;
    } else {
      std::fprintf(stderr, "unknown churn policy '%s' "
                   "(want hub-kill|burst-mute|flash-crowd|churn)\n", policy.c_str());
      std::exit(2);
    }
    gen = std::make_unique<workload::SkewedChurnGenerator>(g, cfg, seed * 17 + 5);
  }

  std::vector<std::uint64_t> rounds, broadcasts, messages, bits, adjustments;
  rounds.reserve(ops);
  broadcasts.reserve(ops);
  messages.reserve(ops);
  bits.reserve(ops);
  adjustments.reserve(ops);
  BucketAccum graceful, node_insert, abrupt_delete;
  const double log_n = std::log2(std::max<double>(2.0, static_cast<double>(n)));

  sim::CostReport total;
  const auto t0 = std::chrono::steady_clock::now();
  workload::stream_churn(mis, *gen, ops, [&](const workload::CostSample& s) {
    total += s.cost;
    rounds.push_back(s.cost.rounds);
    broadcasts.push_back(s.cost.broadcasts);
    messages.push_back(s.cost.messages);
    bits.push_back(s.cost.bits);
    adjustments.push_back(s.cost.adjustments);
    switch (s.kind) {
      case OpKind::kAddNode:
        node_insert.add(s, 0);
        break;
      case OpKind::kRemoveNodeAbrupt:
        abrupt_delete.add(s, std::min(log_n, static_cast<double>(s.degree)));
        break;
      default:
        graceful.add(s, 0);
        break;
    }
  });
  const auto t1 = std::chrono::steady_clock::now();
  if (verify) mis.verify();

  Result r;
  r.graph = graph_name;
  r.policy = policy;
  r.n = n;
  r.ops = ops;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.verified = verify;
  r.total = total;
  r.rounds = summarize(rounds);
  r.broadcasts = summarize(broadcasts);
  r.messages = summarize(messages);
  r.bits = summarize(bits);
  r.adjustments = summarize(adjustments);
  r.graceful = graceful.summary();
  r.node_insert = node_insert.summary();
  r.abrupt_node_delete = abrupt_delete.summary();
  r.tail = graph::degree_tail(gen->graph());
  r.shard_skew = shard_skew_of(gen->graph());
  return r;
}

void write_metric(std::FILE* f, const char* name, const MetricSummary& m,
                  const char* trailer) {
  std::fprintf(f,
               "      \"%s\": {\"mean\": %.4f, \"p50\": %.0f, \"p95\": %.0f, "
               "\"p99\": %.0f, \"max\": %.0f}%s\n",
               name, m.mean, m.p50, m.p95, m.p99, m.max, trailer);
}

bool write_json(const std::string& path, const std::vector<Result>& results,
                double deg, std::uint64_t seed) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"skew\",\n");
  std::fprintf(f,
               "  \"config\": {\"deg\": %.1f, \"seed\": %llu, "
               "\"hardware_concurrency\": %u},\n",
               deg, static_cast<unsigned long long>(seed),
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(f,
                 "    {\"graph\": \"%s\", \"policy\": \"%s\", \"n\": %u, "
                 "\"ops\": %llu, \"seconds\": %.3f, \"verified\": %s,\n",
                 r.graph.c_str(), r.policy.c_str(), r.n,
                 static_cast<unsigned long long>(r.ops), r.seconds,
                 r.verified ? "true" : "false");
    std::fprintf(f, "      \"total\": %s,\n", r.total.to_json().c_str());
    write_metric(f, "rounds", r.rounds, ",");
    write_metric(f, "broadcasts", r.broadcasts, ",");
    write_metric(f, "messages", r.messages, ",");
    write_metric(f, "bits", r.bits, ",");
    write_metric(f, "adjustments", r.adjustments, ",");
    const BucketSummary& g = r.graceful;
    std::fprintf(f,
                 "      \"graceful\": {\"count\": %llu, \"mean_rounds\": %.4f, "
                 "\"mean_broadcasts\": %.4f, \"mean_bits\": %.2f, "
                 "\"mean_adjustments\": %.4f},\n",
                 static_cast<unsigned long long>(g.count), g.rounds, g.broadcasts,
                 g.bits, g.adjustments);
    const BucketSummary& ni = r.node_insert;
    std::fprintf(f,
                 "      \"node_insert\": {\"count\": %llu, \"mean_broadcasts\": %.4f, "
                 "\"mean_degree\": %.4f, \"mean_adjustments\": %.4f},\n",
                 static_cast<unsigned long long>(ni.count), ni.broadcasts, ni.degree,
                 ni.adjustments);
    const BucketSummary& ad = r.abrupt_node_delete;
    std::fprintf(f,
                 "      \"abrupt_node_delete\": {\"count\": %llu, "
                 "\"mean_broadcasts\": %.4f, \"mean_degree\": %.4f, "
                 "\"mean_envelope\": %.4f, \"mean_adjustments\": %.4f},\n",
                 static_cast<unsigned long long>(ad.count), ad.broadcasts, ad.degree,
                 ad.envelope, ad.adjustments);
    std::fprintf(f,
                 "      \"degree_tail\": {\"p50\": %zu, \"p90\": %zu, \"p99\": %zu, "
                 "\"max\": %zu, \"spilled_fraction\": %.4f, "
                 "\"tail_exponent\": %.3f},\n",
                 r.tail.p50, r.tail.p90, r.tail.p99, r.tail.maximum,
                 r.tail.spilled_fraction, r.tail.tail_exponent);
    std::fprintf(f, "      \"shard_skew\": %.4f}%s\n", r.shard_skew,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

bool validate(const std::vector<Result>& results) {
  // Self-check behind --validate: the same skew rules
  // scripts/validate_bench.py applies to the emitted JSON, enforced on the
  // in-memory rows before writing.
  if (results.empty()) {
    std::fprintf(stderr, "validate: no results\n");
    return false;
  }
  for (const Result& r : results) {
    // Unlike the uniform-mix bench, a pure-adversarial policy (hub-kill)
    // may emit zero graceful ops — require only that every op landed in
    // some bucket.
    bool ok = r.ops > 0 &&
              r.graceful.count + r.node_insert.count + r.abrupt_node_delete.count ==
                  r.ops;
    for (const MetricSummary* m :
         {&r.rounds, &r.broadcasts, &r.messages, &r.bits, &r.adjustments})
      ok = ok && m->mean >= 0 && m->p50 <= m->p95 && m->p95 <= m->p99 &&
           m->p99 <= m->max;
    for (const BucketSummary* b : {&r.graceful, &r.node_insert, &r.abrupt_node_delete})
      ok = ok && b->rounds >= 0 && b->broadcasts >= 0 && b->adjustments >= 0;
    ok = ok && r.tail.p50 <= r.tail.p90 && r.tail.p90 <= r.tail.p99 &&
         r.tail.p99 <= r.tail.maximum && r.shard_skew >= 1.0;
    if (!ok) {
      std::fprintf(stderr, "validate: malformed row (%s/%s, n=%u)\n",
                   r.graph.c_str(), r.policy.c_str(), r.n);
      return false;
    }
  }
  return true;
}

std::vector<std::string> split_list(const std::string& list) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > start) out.push_back(list.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto ops = static_cast<std::uint64_t>(
      cli.flag_int("ops", 2'000, "topology changes per (graph, policy, n) cell"));
  const auto seed = static_cast<std::uint64_t>(cli.flag_int("seed", 42, "base seed"));
  const auto deg =
      cli.flag_double("deg", 8.0, "average degree target for the base graphs");
  const auto sizes_flag =
      cli.flag_string("sizes", "1000,10000", "node counts, comma-separated");
  const auto graphs_flag = cli.flag_string(
      "graphs", "ba,chung-lu,planted,uniform", "graph distributions, comma-separated");
  const auto policies_flag = cli.flag_string(
      "policies", "hub-kill,burst-mute,flash-crowd,churn",
      "churn policies, comma-separated");
  const bool verify =
      cli.flag_bool("verify", true, "check each cell against the greedy oracle");
  const auto out =
      cli.flag_string("out", "BENCH_skew.json", "machine-readable output path");
  const bool validate_flag = cli.flag_bool(
      "validate", false, "self-check result rows (validate_bench.py rules)");
  cli.finish();

  std::vector<NodeId> sizes;
  for (const std::string& token : split_list(sizes_flag)) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0' || parsed < 8) {
      std::fprintf(stderr, "--sizes wants a comma-separated list of node counts >= 8\n");
      return 2;
    }
    sizes.push_back(static_cast<NodeId>(parsed));
  }
  const std::vector<std::string> graphs = split_list(graphs_flag);
  const std::vector<std::string> policies = split_list(policies_flag);

  std::vector<Result> results;
  for (const std::string& graph_name : graphs) {
    for (const std::string& policy : policies) {
      for (const NodeId n : sizes) {
        const Result r = run_cell(graph_name, policy, n, deg, ops, seed, verify);
        results.push_back(r);
        std::printf(
            "%-9s %-12s n=%-7u %6.2fs  graceful: bcast=%.2f  abrupt-del: "
            "bcast=%.2f env=%.2f (x%llu)  tail: p99=%zu max=%zu a=%.2f  "
            "spill=%.1f%% shard-skew=%.2f\n",
            r.graph.c_str(), r.policy.c_str(), r.n, r.seconds,
            r.graceful.broadcasts, r.abrupt_node_delete.broadcasts,
            r.abrupt_node_delete.envelope,
            static_cast<unsigned long long>(r.abrupt_node_delete.count),
            r.tail.p99, r.tail.maximum, r.tail.tail_exponent,
            100.0 * r.tail.spilled_fraction, r.shard_skew);
        std::fflush(stdout);
      }
    }
  }
  if (validate_flag && !validate(results)) return 1;
  return write_json(out, results, deg, seed) ? 0 : 1;
}
