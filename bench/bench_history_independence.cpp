// E9 — history independence (Definition 14).
//
// Builds the same 24-node graph through three very different histories
// (sorted growth; supergraph-then-prune with graceful/abrupt deletions;
// churn with node deletions and unmutes) and compares the induced output
// distributions over random seeds, for the sequential and the distributed
// engine paths:
//   * exact per-seed equality (the strongest form: same π ⇒ same output),
//   * total-variation distance between MIS-size histograms,
//   * max per-node membership-frequency gap,
//   * two-sample chi-square on the size histograms vs the 0.001 critical
//     value.
#include <algorithm>
#include <iostream>

#include "core/history.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/churn.hpp"

namespace {

using namespace dmis;
using core::EnginePath;
using workload::GraphOp;
using workload::Trace;

/// Three histories of the same target graph.
std::vector<Trace> make_histories(std::uint64_t seed) {
  util::Rng rng(seed);
  const auto g = graph::erdos_renyi(24, 0.18, rng);

  std::vector<Trace> histories;
  histories.push_back(workload::grow_trace(g));

  // Supergraph then prune.
  Trace prune;
  for (graph::NodeId v = 0; v < g.id_bound(); ++v) prune.push_back(GraphOp::add_node());
  std::vector<std::pair<graph::NodeId, graph::NodeId>> clutter;
  for (graph::NodeId v = 2; v < g.id_bound(); v += 2) {
    const auto u = static_cast<graph::NodeId>(rng.below(v));
    if (u != v && !g.has_edge(u, v)) clutter.emplace_back(u, v);
  }
  for (const auto& [u, v] : clutter) prune.push_back(GraphOp::add_edge(u, v));
  auto edges = g.edges();
  std::sort(edges.begin(), edges.end());
  for (auto it = edges.rbegin(); it != edges.rend(); ++it)
    prune.push_back(GraphOp::add_edge(it->first, it->second));
  bool abrupt = true;
  for (const auto& [u, v] : clutter) {
    prune.push_back(GraphOp::remove_edge(u, v, abrupt));
    abrupt = !abrupt;
  }
  histories.push_back(std::move(prune));

  // Churny history: create extra nodes (some unmuted) and delete them again,
  // so node-deletion and unmute paths participate in the final distribution.
  Trace churny;
  for (graph::NodeId v = 0; v < g.id_bound(); ++v) {
    churny.push_back(v % 3 == 0 ? GraphOp::unmute_node() : GraphOp::add_node());
  }
  const graph::NodeId extra_base = g.id_bound();
  for (int i = 0; i < 6; ++i) {
    std::vector<graph::NodeId> attach{static_cast<graph::NodeId>(rng.below(24))};
    churny.push_back(GraphOp::add_node(std::move(attach)));
  }
  for (const auto& [u, v] : edges) churny.push_back(GraphOp::add_edge(u, v));
  for (int i = 0; i < 6; ++i) {
    churny.push_back(GraphOp::remove_node(extra_base + static_cast<graph::NodeId>(i),
                                          /*abrupt=*/i % 2 == 0));
  }
  histories.push_back(std::move(churny));
  return histories;
}

const char* path_name(EnginePath path) {
  switch (path) {
    case EnginePath::kCascade: return "sequential cascade";
    case EnginePath::kTemplate: return "sequential template";
    case EnginePath::kDistributedSync: return "distributed sync";
    case EnginePath::kDistributedAsync: return "distributed async";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto trials =
      static_cast<std::uint64_t>(cli.flag_int("trials", 500, "seeds per distribution"));
  cli.finish();

  const auto histories = make_histories(2026);

  // Sanity: all histories build the same graph.
  const auto target = workload::materialize(histories[0]);
  for (const auto& h : histories) {
    const auto built = workload::materialize(h);
    if (!(built.node_count() == target.node_count() &&
          built.edge_count() == target.edge_count())) {
      std::cerr << "history construction bug\n";
      return 1;
    }
  }

  std::cout << "# E9 — history independence: same graph, three histories\n";
  std::cout << "\n(histories: A = sorted growth; B = supergraph then prune; "
               "C = churn with node deletions and unmutes. Note B and C pass "
               "through different node-id spaces for the extras, so "
               "comparisons use the surviving 24 nodes.)\n\n";

  util::Table exact({"path", "per-seed output equality A=B", "A=C (seeds checked)"});
  for (const EnginePath path :
       {EnginePath::kCascade, EnginePath::kTemplate, EnginePath::kDistributedSync,
        EnginePath::kDistributedAsync}) {
    const std::uint64_t check = path == EnginePath::kCascade ? 50 : 12;
    std::uint64_t equal_ab = 0;
    std::uint64_t equal_ac = 0;
    for (std::uint64_t s = 0; s < check; ++s) {
      const auto a = core::replay_membership(histories[0], 31 + s, path);
      const auto b = core::replay_membership(histories[1], 31 + s, path);
      bool ab = true;
      for (graph::NodeId v = 0; v < 24; ++v) ab &= (a[v] == b[v]);
      equal_ab += ab ? 1 : 0;
      // History C draws extra priorities for its transient nodes, so its π
      // over the surviving ids differs — equality is distributional there.
      equal_ac += 1;
    }
    exact.row()
        .cell(path_name(path))
        .cell(std::to_string(equal_ab) + "/" + std::to_string(check))
        .cell("distributional (see below)");
  }
  exact.print(std::cout);

  std::cout << "\n## Distribution comparison (cascade path, " << trials
            << " seeds each, disjoint seed ranges)\n\n";
  util::Table dist({"pair", "TV(mis size)", "max per-node freq gap",
                    "chi² (crit @0.001)"});
  std::vector<core::OutputDistribution> dists;
  dists.push_back(core::collect_distribution(histories[0], 10'000, trials,
                                             EnginePath::kCascade));
  dists.push_back(core::collect_distribution(histories[1], 20'000, trials,
                                             EnginePath::kCascade));
  dists.push_back(core::collect_distribution(histories[2], 30'000, trials,
                                             EnginePath::kCascade));
  const char* names[3] = {"A vs B", "A vs C", "B vs C"};
  const int pairs[3][2] = {{0, 1}, {0, 2}, {1, 2}};
  for (int i = 0; i < 3; ++i) {
    const auto& da = dists[pairs[i][0]];
    const auto& db = dists[pairs[i][1]];
    std::size_t dof = 0;
    const double stat = util::chi_square_two_sample(da.mis_size, db.mis_size, &dof);
    dist.row()
        .cell(names[i])
        .cell(util::total_variation(da.mis_size, db.mis_size), 4)
        .cell(core::max_frequency_gap(da, db), 4)
        .cell(util::format_double(stat, 2) + " (" +
              util::format_double(util::chi_square_critical_001(dof), 2) + ")");
  }
  dist.print(std::cout);
  std::cout << "\n(all TV distances and gaps should be sampling noise; every "
               "chi² below its critical value)\n";
  return 0;
}
