// E2 — Corollary 6: the direct implementation of the template needs, in
// expectation, a single adjustment and a single round — in the synchronous
// model (rounds = template levels) and the asynchronous model (rounds =
// longest causal chain).
//
// Sync side: E[levels] from the literal template. Async side: causal depth
// measured on the event-driven simulator under random delays. Both must
// stay O(1) as n grows.
//
// Besides the printed table, every row is appended to a machine-readable
// JSON file (default BENCH_corollary6.json, --json to override, empty string
// to disable).
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/async_mis.hpp"
#include "core/template_engine.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace dmis;
using util::OnlineStats;

struct JsonRow {
  std::string model;
  std::uint64_t n = 0;
  std::uint64_t trials = 0;
  double rounds = 0, adjustments = 0;
};

bool write_json(const std::string& path, const std::vector<JsonRow>& rows) {
  if (path.empty()) return true;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"corollary6\",\n  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const JsonRow& r = rows[i];
    std::fprintf(f,
                 "    {\"model\": \"%s\", \"n\": %llu, \"trials\": %llu, "
                 "\"rounds\": %.4f, \"adjustments\": %.4f}%s\n",
                 r.model.c_str(), static_cast<unsigned long long>(r.n),
                 static_cast<unsigned long long>(r.trials), r.rounds, r.adjustments,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto trials = static_cast<int>(cli.flag_int("trials", 200, "trials per row"));
  const auto max_delay =
      static_cast<std::uint64_t>(cli.flag_int("max_delay", 8, "async max delay"));
  const auto json_path = cli.flag_string("json", "BENCH_corollary6.json",
                                         "machine-readable output (empty disables)");
  cli.finish();
  std::vector<JsonRow> json_rows;

  std::cout << "# E2 — Corollary 6: direct implementation — one adjustment, one "
               "round in expectation\n";

  util::Table table({"model", "n", "E[rounds] ± 95%", "E[adjustments] ± 95%"});

  for (const graph::NodeId n : {100U, 400U, 1600U}) {
    util::Rng rng(n);
    const auto g = graph::random_avg_degree(n, 8.0, rng);

    // Synchronous direct implementation: rounds = number of template levels
    // (level i's updates happen in parallel in round i).
    OnlineStats sync_rounds;
    OnlineStats sync_adjustments;
    for (int t = 0; t < trials; ++t) {
      core::TemplateEngine engine(g, 31 + static_cast<std::uint64_t>(t) * 7);
      const graph::NodeId u = static_cast<graph::NodeId>(t) % n;
      const graph::NodeId v = (u + 1 + static_cast<graph::NodeId>(t / n)) % n;
      if (u == v) continue;
      const auto rep = engine.graph().has_edge(u, v) ? engine.remove_edge(u, v)
                                                     : engine.add_edge(u, v);
      sync_rounds.add(static_cast<double>(rep.levels));
      sync_adjustments.add(static_cast<double>(rep.adjustments));
    }
    json_rows.push_back({"sync", n, sync_rounds.count(), sync_rounds.mean(),
                         sync_adjustments.mean()});
    table.row()
        .cell("sync (template levels)")
        .cell(static_cast<std::uint64_t>(n))
        .cell_pm(sync_rounds.mean(), sync_rounds.ci95())
        .cell_pm(sync_adjustments.mean(), sync_adjustments.ci95());

    // Asynchronous direct implementation under random delays.
    OnlineStats async_rounds;
    OnlineStats async_adjustments;
    for (int t = 0; t < trials; ++t) {
      core::AsyncMis mis(g, 57 + static_cast<std::uint64_t>(t) * 11,
                         991 + static_cast<std::uint64_t>(t), max_delay);
      const graph::NodeId u = static_cast<graph::NodeId>(t * 3) % n;
      const graph::NodeId v = (u + 2) % n;
      if (u == v) continue;
      const auto result = mis.graph().has_edge(u, v) ? mis.remove_edge(u, v)
                                                     : mis.insert_edge(u, v);
      async_rounds.add(static_cast<double>(result.cost.rounds));
      async_adjustments.add(static_cast<double>(result.cost.adjustments));
    }
    json_rows.push_back({"async", n, async_rounds.count(), async_rounds.mean(),
                         async_adjustments.mean()});
    table.row()
        .cell("async (causal depth)")
        .cell(static_cast<std::uint64_t>(n))
        .cell_pm(async_rounds.mean(), async_rounds.ci95())
        .cell_pm(async_adjustments.mean(), async_adjustments.ci95());
  }

  table.print(std::cout);
  std::cout << "\n(async depth includes the constant edge-introduction handshake; "
               "the point is that neither column grows with n)\n";
  return write_json(json_path, json_rows) ? 0 : 1;
}
