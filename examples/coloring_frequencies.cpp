// Dynamic frequency assignment for interfering access points.
//
// Access points that interfere must broadcast on different channels — a
// proper coloring of the interference graph. This example maintains the
// coloring two ways as the radio environment changes:
//   * the paper's §5 reduction — dynamic MIS over the clique expansion
//     (history independent, but pays the reduction overhead), and
//   * the direct dynamic random-greedy coloring (also history independent;
//     the paper notes its adjustment cost can reach Θ(Δ) and leaves closing
//     that gap open).
#include <iostream>

#include "derived/dynamic_coloring.hpp"
#include "derived/greedy_coloring.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dmis;
  util::Cli cli(argc, argv);
  const auto aps =
      static_cast<graph::NodeId>(cli.flag_int("aps", 40, "access points"));
  const auto channels =
      static_cast<graph::NodeId>(cli.flag_int("channels", 12, "channel budget"));
  const auto events = static_cast<int>(cli.flag_int("events", 250, "interference events"));
  const auto seed = static_cast<std::uint64_t>(cli.flag_int("seed", 5, "rng seed"));
  cli.finish();

  util::Rng rng(seed);
  derived::DynamicColoring reduction(channels, seed + 10);
  derived::GreedyColoringEngine direct(seed + 10);
  for (graph::NodeId v = 0; v < aps; ++v) {
    (void)reduction.add_node();
    (void)direct.add_node();
  }

  util::OnlineStats reduction_adj;
  util::OnlineStats direct_adj;
  for (int e = 0; e < events; ++e) {
    const auto u = static_cast<graph::NodeId>(rng.below(aps));
    const auto v = static_cast<graph::NodeId>(rng.below(aps));
    if (u == v) continue;
    if (reduction.graph().has_edge(u, v)) {
      reduction.remove_edge(u, v);
      direct_adj.add(static_cast<double>(direct.remove_edge(u, v).adjustments));
    } else {
      // Respect the channel budget: the reduction needs deg ≤ channels − 1.
      if (reduction.graph().degree(u) + 2 >= channels ||
          reduction.graph().degree(v) + 2 >= channels) {
        continue;
      }
      reduction.add_edge(u, v);
      direct_adj.add(static_cast<double>(direct.add_edge(u, v).adjustments));
    }
    reduction_adj.add(static_cast<double>(reduction.last_adjustments()));
  }
  reduction.verify();
  direct.verify();

  util::Table table({"assignment strategy", "channels used",
                     "mean adjustments / event", "max adjustments / event"});
  table.row()
      .cell("MIS reduction (clique expansion)")
      .cell(static_cast<std::uint64_t>(reduction.palette_used()))
      .cell(reduction_adj.mean(), 3)
      .cell(reduction_adj.max(), 0);
  table.row()
      .cell("direct random-greedy")
      .cell(static_cast<std::uint64_t>(direct.palette_used()))
      .cell(direct_adj.mean(), 3)
      .cell(direct_adj.max(), 0);
  table.print(std::cout);

  std::cout << "\nboth colorings are proper (verified) and history independent; "
               "the direct greedy usually needs fewer channel flips per event, "
               "matching the paper's §5 discussion of the reduction's cost\n";
  return 0;
}
