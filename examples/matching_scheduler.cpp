// Task–worker pairing via dynamic maximal matching.
//
// Compatibility edges connect tasks and workers; a maximal matching pairs
// them so that no compatible (task, worker) pair is left both idle. The
// paper's composability result (§5) gives a *history-independent* dynamic
// matching by running the dynamic MIS on the line graph. This example
// streams task arrivals/completions and worker churn, and shows that each
// event disturbs O(1) existing pairs in expectation — assignments are
// stable, unlike a from-scratch rematch.
#include <iostream>

#include "derived/dynamic_matching.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dmis;
  util::Cli cli(argc, argv);
  const auto workers =
      static_cast<graph::NodeId>(cli.flag_int("workers", 60, "worker count"));
  const auto events = static_cast<int>(cli.flag_int("events", 600, "stream events"));
  const auto seed = static_cast<std::uint64_t>(cli.flag_int("seed", 7, "rng seed"));
  cli.finish();

  util::Rng rng(seed);
  derived::DynamicMatching pairing(seed + 1);

  std::vector<graph::NodeId> worker_ids;
  for (graph::NodeId w = 0; w < workers; ++w) worker_ids.push_back(pairing.add_node());
  std::vector<graph::NodeId> task_ids;

  util::OnlineStats pairs_disturbed;
  util::OnlineStats matched_fraction;

  for (int e = 0; e < events; ++e) {
    const double roll = rng.real01();
    std::uint64_t disturbed = 0;
    if (roll < 0.5 || task_ids.empty()) {
      // Task arrives; it is compatible with ~4 random workers.
      const auto task = pairing.add_node();
      task_ids.push_back(task);
      for (int i = 0; i < 4; ++i) {
        const auto w = worker_ids[rng.below(worker_ids.size())];
        if (!pairing.graph().has_edge(task, w)) {
          pairing.add_edge(task, w);
          disturbed += pairing.last_adjustments();
        }
      }
    } else {
      // Task completes (or is cancelled) and leaves.
      const std::size_t index = rng.below(task_ids.size());
      pairing.remove_node(task_ids[index]);
      disturbed += pairing.last_adjustments();
      task_ids[index] = task_ids.back();
      task_ids.pop_back();
    }
    pairs_disturbed.add(static_cast<double>(disturbed));
    if (!task_ids.empty()) {
      std::size_t matched = 0;
      for (const auto t : task_ids) matched += pairing.is_matched_node(t) ? 1 : 0;
      matched_fraction.add(static_cast<double>(matched) /
                           static_cast<double>(task_ids.size()));
    }
  }
  pairing.verify();

  util::Table table({"metric", "value"});
  table.row().cell("events processed").cell(pairs_disturbed.count());
  table.row().cell("open tasks now").cell(static_cast<std::uint64_t>(task_ids.size()));
  table.row().cell("pairs now").cell(static_cast<std::uint64_t>(pairing.matching_size()));
  table.row().cell("mean pair changes / event").cell(pairs_disturbed.mean(), 3);
  table.row().cell("max pair changes / event").cell(pairs_disturbed.max(), 0);
  table.row().cell("mean fraction of tasks matched").cell(matched_fraction.mean(), 3);
  table.print(std::cout);
  std::cout << "\n(maximality guarantee: whenever a compatible worker is idle, "
               "the task is paired — and each event disturbs O(1) pairs in "
               "expectation)\n";
  return 0;
}
