// Quickstart: maintain a maximal independent set of a changing graph.
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/examples/example_quickstart
#include <iostream>

#include "core/dynamic_mis.hpp"

int main() {
  // One seed drives all randomness: the same update sequence with the same
  // seed is exactly reproducible.
  dmis::core::DynamicMIS mis(/*seed=*/2026);

  // Insert nodes; each returns a stable id.
  const auto a = mis.add_node();
  const auto b = mis.add_node();
  const auto c = mis.add_node({a, b});  // c arrives wired to a and b

  std::cout << "after inserts:  |MIS| = " << mis.mis_size() << "  members:";
  for (const auto v : mis.mis_set()) std::cout << ' ' << v;
  std::cout << '\n';

  // Topology changes; the structure self-repairs with expected one
  // adjustment per change (paper: Censor-Hillel–Haramaty–Karnin, Theorem 1).
  mis.add_edge(a, b);
  std::cout << "after a–b edge: adjustments=" << mis.last_report().adjustments
            << "  |MIS| = " << mis.mis_size() << '\n';

  mis.remove_node(b);
  std::cout << "after del b:    adjustments=" << mis.last_report().adjustments
            << "  |MIS| = " << mis.mis_size() << '\n';

  // Membership queries are O(1).
  std::cout << "a in MIS? " << (mis.in_mis(a) ? "yes" : "no")
            << ", c in MIS? " << (mis.in_mis(c) ? "yes" : "no") << '\n';

  // The maintained set always equals the from-scratch random-greedy MIS of
  // the *current* graph (history independence); verify() asserts it.
  mis.verify();

  std::cout << "lifetime: " << mis.update_count() << " updates, "
            << mis.lifetime_adjustments() << " total adjustments\n";
  return 0;
}
