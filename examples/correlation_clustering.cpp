// Dynamic correlation clustering of an evolving similarity graph.
//
// Nodes are items; an edge means "similar". The paper's pivot construction
// (§1.1) turns the maintained MIS into a 3-approximate correlation
// clustering: every MIS node anchors a cluster, and each remaining item
// joins its earliest-ordered similar anchor. This example grows a
// preferential-attachment similarity graph, then streams edits, tracking
// cluster count, objective cost, and how few items get reassigned per edit.
#include <iostream>

#include "clustering/dynamic_clustering.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dmis;
  util::Cli cli(argc, argv);
  const auto items =
      static_cast<graph::NodeId>(cli.flag_int("items", 300, "number of items"));
  const auto edits = static_cast<int>(cli.flag_int("edits", 500, "stream edits"));
  const auto seed = static_cast<std::uint64_t>(cli.flag_int("seed", 3, "rng seed"));
  cli.finish();

  util::Rng rng(seed);
  clustering::DynamicClustering dc(seed * 13 + 5);

  // Build a preferential-attachment similarity graph through the dynamic API.
  const auto blueprint = graph::barabasi_albert(items, 3, rng);
  for (graph::NodeId v = 0; v < items; ++v) (void)dc.add_node();
  for (const auto& [u, v] : blueprint.edges()) dc.add_edge(u, v);

  const auto cluster_count = [&dc] {
    return clustering::group_clusters(dc.graph(), dc.assignment()).size();
  };
  std::cout << "initial: " << items << " items, " << dc.graph().edge_count()
            << " similarities, " << cluster_count() << " clusters, cost "
            << dc.cost() << "\n\n";

  util::OnlineStats reassigned;
  util::OnlineStats mis_adjustments;
  for (int e = 0; e < edits; ++e) {
    const auto u = static_cast<graph::NodeId>(rng.below(items));
    const auto v = static_cast<graph::NodeId>(rng.below(items));
    if (u == v) continue;
    if (dc.graph().has_edge(u, v)) dc.remove_edge(u, v);
    else dc.add_edge(u, v);
    reassigned.add(static_cast<double>(dc.last_reassigned()));
    mis_adjustments.add(static_cast<double>(dc.mis().last_report().adjustments));
  }
  dc.verify();

  util::Table table({"metric", "value"});
  table.row().cell("edits applied").cell(reassigned.count());
  table.row().cell("mean anchors adjusted / edit").cell(mis_adjustments.mean(), 3);
  table.row().cell("mean items reassigned / edit").cell(reassigned.mean(), 3);
  table.row().cell("max items reassigned in one edit").cell(reassigned.max(), 0);
  table.row().cell("clusters now").cell(static_cast<std::uint64_t>(cluster_count()));
  table.row().cell("objective cost now").cell(dc.cost());
  table.print(std::cout);

  // Show a few clusters.
  std::cout << "\nsample clusters (pivot: members…):\n";
  int shown = 0;
  for (const auto& [pivot, members] :
       clustering::group_clusters(dc.graph(), dc.assignment())) {
    if (members.size() < 3 || ++shown > 4) continue;
    std::cout << "  " << pivot << ":";
    std::size_t printed = 0;
    for (const auto m : members) {
      std::cout << ' ' << m;
      if (++printed == 8) {
        std::cout << " …(" << members.size() << " total)";
        break;
      }
    }
    std::cout << '\n';
  }
  std::cout << "\n(the clustering is history independent: it depends only on "
               "the current similarity graph, so no edit order can bias it)\n";
  return 0;
}
