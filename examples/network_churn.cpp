// Clusterhead maintenance in a churning ad-hoc network.
//
// A classic use of MIS in networking: MIS members act as clusterheads —
// no two clusterheads are adjacent, and every other station hears at least
// one. This example runs the *distributed* algorithm (Algorithm 2 of the
// paper) over a simulated broadcast network while stations join, fail
// (abruptly!), leave gracefully, and links flap — and reports the measured
// per-change cost: expected one adjustment, O(1) rounds and broadcasts.
#include <algorithm>
#include <iostream>

#include "core/dist_mis.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dmis;
  util::Cli cli(argc, argv);
  const auto stations = static_cast<graph::NodeId>(
      cli.flag_int("stations", 200, "initial number of stations"));
  const auto events = static_cast<int>(cli.flag_int("events", 400, "churn events"));
  const auto seed = static_cast<std::uint64_t>(cli.flag_int("seed", 1, "rng seed"));
  cli.finish();

  util::Rng rng(seed);
  const auto initial = graph::random_avg_degree(stations, 6.0, rng);
  core::DistMis net(initial, seed * 7 + 1);

  util::OnlineStats adjustments;
  util::OnlineStats rounds;
  util::OnlineStats broadcasts;
  std::uint64_t head_count_changes = 0;
  std::size_t last_heads = net.mis_set().size();

  for (int e = 0; e < events; ++e) {
    const auto live = net.graph().nodes();
    core::DistMis::ChangeResult result;
    const double roll = rng.real01();
    if (roll < 0.30) {  // link comes up
      const auto u = live[rng.below(live.size())];
      const auto v = live[rng.below(live.size())];
      if (u == v || net.graph().has_edge(u, v)) continue;
      result = net.insert_edge(u, v);
    } else if (roll < 0.55) {  // link flaps away (abrupt half the time)
      const auto edges = net.graph().edges();
      if (edges.empty()) continue;
      const auto& [u, v] = edges[rng.below(edges.size())];
      result = net.remove_edge(u, v, rng.chance(0.5) ? core::DeletionMode::kAbrupt
                                                     : core::DeletionMode::kGraceful);
    } else if (roll < 0.75) {  // new station joins near a few others
      std::vector<graph::NodeId> reachable;
      for (int i = 0; i < 5; ++i) reachable.push_back(live[rng.below(live.size())]);
      std::sort(reachable.begin(), reachable.end());
      reachable.erase(std::unique(reachable.begin(), reachable.end()),
                      reachable.end());
      result = net.insert_node(reachable);
    } else if (roll < 0.90 && live.size() > 8) {  // station crashes
      result = net.remove_node(live[rng.below(live.size())],
                               core::DeletionMode::kAbrupt);
    } else if (live.size() > 8) {  // station powers down politely
      result = net.remove_node(live[rng.below(live.size())],
                               core::DeletionMode::kGraceful);
    } else {
      continue;
    }
    adjustments.add(static_cast<double>(result.cost.adjustments));
    rounds.add(static_cast<double>(result.cost.rounds));
    broadcasts.add(static_cast<double>(result.cost.broadcasts));
    const std::size_t heads = net.mis_set().size();
    head_count_changes += heads != last_heads ? 1 : 0;
    last_heads = heads;
  }

  net.verify();  // clusterheads still form the exact random-greedy MIS

  std::cout << "clusterhead maintenance under churn\n";
  util::Table table({"metric", "mean", "max"});
  table.row().cell("adjustments / change").cell(adjustments.mean(), 3).cell(
      adjustments.max(), 0);
  table.row().cell("rounds / change").cell(rounds.mean(), 3).cell(rounds.max(), 0);
  table.row().cell("broadcasts / change").cell(broadcasts.mean(), 3).cell(
      broadcasts.max(), 0);
  table.print(std::cout);
  std::cout << "\nstations now: " << net.graph().node_count()
            << ", clusterheads: " << net.mis_set().size()
            << ", head-set changed on " << head_count_changes << "/"
            << adjustments.count() << " events\n"
            << "(stability is the point: a static re-election would reshuffle "
               "most heads on every event)\n";
  return 0;
}
