// dmis_ingest — convert a real-world SNAP edge list into a replayable
// binary trace (workload::TraceFile).
//
//   dmis_ingest --in edges.txt --out real.trc
//               [--churn-ops K --policy uniform|hub-kill|burst-mute|flash-crowd]
//               [--seed S] [--p-abrupt X] [--verify]
//
// The input is one edge per line ("u v", arbitrary integer ids, '#'/'%'
// comments — the format SNAP datasets ship in). Ids are densified in
// first-appearance order, the graph's canonical grow history becomes the
// trace prefix, and with --churn-ops an adversarial churn suffix is
// appended so the real topology can be replayed *and then attacked* through
// any engine (bench_skew, the fuzzer, dmis_snapshot save --trace all accept
// the output). --verify re-opens the written file, checks its checksum and
// materializes it back, confirming the round-trip reproduces the final
// graph exactly.
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>

#include "graph/graph_stats.hpp"
#include "util/cli.hpp"
#include "workload/churn.hpp"
#include "workload/edge_list.hpp"
#include "workload/skewed.hpp"
#include "workload/trace.hpp"
#include "workload/trace_file.hpp"

namespace {

using namespace dmis;

void print_tail(const graph::DynamicGraph& g, const char* label) {
  const graph::DegreeTail tail = graph::degree_tail(g);
  std::printf("%s: %u nodes, %zu edges  degree p50 %zu p90 %zu p99 %zu max %zu",
              label, g.node_count(), g.edge_count(), tail.p50, tail.p90, tail.p99,
              tail.maximum);
  if (tail.tail_exponent > 0.0)
    std::printf("  tail-exponent %.2f", tail.tail_exponent);
  std::printf("  spilled-inline %.2f%%\n", 100.0 * tail.spilled_fraction);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto in = cli.flag_string("in", "", "SNAP edge-list input path");
  const auto out = cli.flag_string("out", "real.trc", "binary trace output path");
  const auto churn_ops = static_cast<std::size_t>(
      cli.flag_int("churn-ops", 0, "churn ops to append after the grow prefix"));
  const auto policy_name = cli.flag_string(
      "policy", "hub-kill",
      "churn policy for --churn-ops: uniform|hub-kill|burst-mute|flash-crowd");
  const auto seed = static_cast<std::uint64_t>(cli.flag_int("seed", 42, "rng seed"));
  const auto p_abrupt =
      cli.flag_double("p-abrupt", 0.5, "abrupt fraction of deletions");
  const bool verify = cli.flag_bool(
      "verify", false, "re-open the written trace and check the round-trip");
  cli.finish();

  if (in.empty()) {
    std::fprintf(stderr, "error: --in is required (a SNAP edge-list file)\n");
    return 2;
  }

  graph::DynamicGraph g;
  workload::EdgeListStats stats;
  std::string error;
  if (!workload::read_edge_list_file(in, g, &stats, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::printf("parsed %s: %zu lines (%zu comments), %zu edges kept "
              "(%zu self-loops, %zu duplicates skipped)\n",
              in.c_str(), stats.lines, stats.comments, stats.edges,
              stats.self_loops, stats.duplicates);
  print_tail(g, "ingested graph");

  workload::Trace trace = workload::grow_trace(g);
  const std::size_t grow_ops = trace.size();
  graph::DynamicGraph final_graph = g;
  if (churn_ops > 0) {
    workload::Trace churn;
    if (policy_name == "uniform") {
      workload::ChurnConfig config;
      config.p_abrupt = p_abrupt;
      workload::ChurnGenerator gen(std::move(g), config, seed);
      churn = gen.generate(churn_ops);
      final_graph = gen.graph();
    } else {
      workload::SkewedChurnConfig config;
      config.p_abrupt = p_abrupt;
      if (policy_name == "hub-kill") {
        config.policy = workload::ChurnPolicy::kHubKill;
      } else if (policy_name == "burst-mute") {
        config.policy = workload::ChurnPolicy::kBurstMute;
      } else if (policy_name == "flash-crowd") {
        config.policy = workload::ChurnPolicy::kFlashCrowd;
      } else {
        std::fprintf(stderr, "error: unknown --policy '%s'\n", policy_name.c_str());
        return 2;
      }
      workload::SkewedChurnGenerator gen(std::move(g), config, seed);
      churn = gen.generate(churn_ops);
      final_graph = gen.graph();
    }
    trace.insert(trace.end(), churn.begin(), churn.end());
  }

  if (!workload::TraceFile::save(out, trace, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::printf("wrote %s: %zu ops (%zu grow + %zu %s churn)\n", out.c_str(),
              trace.size(), grow_ops, trace.size() - grow_ops,
              churn_ops > 0 ? policy_name.c_str() : "no");
  if (churn_ops > 0) print_tail(final_graph, "post-churn graph");

  if (verify) {
    workload::TraceFile tf;
    if (!tf.open(out, &error) || !tf.verify(&error)) {
      std::fprintf(stderr, "FAIL: %s\n", error.c_str());
      return 1;
    }
    const graph::DynamicGraph replayed = workload::materialize(tf.to_trace());
    if (replayed.node_count() != final_graph.node_count() ||
        replayed.edge_count() != final_graph.edge_count()) {
      std::fprintf(stderr,
                   "FAIL: round-trip mismatch — replayed %u nodes/%zu edges, "
                   "expected %u/%zu\n",
                   replayed.node_count(), replayed.edge_count(),
                   final_graph.node_count(), final_graph.edge_count());
      return 1;
    }
    bool edges_match = true;
    replayed.for_each_edge([&](graph::NodeId u, graph::NodeId v) {
      edges_match &= final_graph.has_edge(u, v);
    });
    if (!edges_match) {
      std::fprintf(stderr, "FAIL: round-trip mismatch — edge sets differ\n");
      return 1;
    }
    std::printf("verify OK: checksum valid, replay reproduces the final graph\n");
  }
  return 0;
}
