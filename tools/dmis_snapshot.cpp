// dmis_snapshot — the operator CLI for the binary snapshot + trace formats.
//
//   dmis_snapshot save    --out g.snap [--n N --deg D --seed S | --trace t]
//                         [--engine [--priority-seed P] [--shards S]]
//   dmis_snapshot load    --in g.snap [--warm]   time mmap-open + bulk load
//                         [--borrow] [--loaders L]  (+ warm engine start on
//                                                v2/v3); --borrow opens
//                                                zero-copy
//   dmis_snapshot verify  --in g.snap            checksum + deep consistency
//                                                (v2: greedy-fixpoint check)
//   dmis_snapshot stats   --in g.snap            header, sections, degrees
//   dmis_snapshot record  --out t.trc --n N --ops K [--deg D --seed S ...]
//
// `save` builds a graph — either G(n, m) at the requested average degree or
// the graph a trace materializes (binary .trc via workload::TraceFile, any
// other extension read as a text trace) — and writes it as a snapshot.
// With `--engine` it additionally runs a CascadeEngine over the graph and
// writes a version-2 snapshot carrying the engine state (priority keys +
// membership), which `load --warm` restarts without recomputing the greedy
// MIS; `--shards S` upgrades that to a version-3 snapshot whose shard table
// lets S loaders adopt disjoint id ranges in parallel. Warm loads print a
// membership fingerprint (FNV-1a over the id-indexed membership bytes) so a
// v2 and a v3 restart of the same state can be diffed in one line. `record` emits a self-contained binary churn trace: the grow history
// of the warm start graph followed by `--ops` random churn ops, so replaying
// the whole file from an empty engine reproduces the workload exactly (that
// replay is bench_snapshot's rebuild comparator).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/cascade_engine.hpp"
#include "core/engine_snapshot.hpp"
#include "core/lockfree_engine.hpp"
#include "graph/generators.hpp"
#include "graph/graph_stats.hpp"
#include "graph/snapshot.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "workload/churn.hpp"
#include "workload/trace.hpp"
#include "workload/trace_file.hpp"

namespace {

using namespace dmis;
using graph::NodeId;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// FNV-1a 64 over the id-indexed membership bytes: equal fingerprints ⇔
/// equal warm-started MIS, whatever the snapshot version or engine.
template <typename Engine>
std::uint64_t membership_fingerprint(const Engine& e) {
  std::uint64_t h = 1469598103934665603ULL;
  for (NodeId v = 0; v < e.graph().id_bound(); ++v) {
    h ^= e.in_mis(v) ? 1u : 0u;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Build the save input: either the materialization of a trace file or a
/// fresh G(n, m) at the requested average degree.
bool build_graph(const std::string& trace_path, NodeId n, double deg,
                 std::uint64_t seed, graph::DynamicGraph& out) {
  if (!trace_path.empty()) {
    workload::Trace trace;
    if (ends_with(trace_path, ".trc")) {
      workload::TraceFile tf;
      std::string error;
      if (!tf.open(trace_path, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return false;
      }
      trace = tf.to_trace();
    } else {
      std::ifstream is(trace_path);
      if (!is) {
        std::fprintf(stderr, "error: cannot open %s\n", trace_path.c_str());
        return false;
      }
      trace = workload::read_trace(is);
    }
    out = workload::materialize(trace);
    return true;
  }
  util::Rng rng(seed);
  out = graph::random_avg_degree(n, deg, rng);
  return true;
}

int cmd_save(util::Cli& cli) {
  const auto out = cli.flag_string("out", "graph.snap", "snapshot output path");
  const auto trace_path =
      cli.flag_string("trace", "", "build from this trace (.trc binary, else text)");
  const auto n = static_cast<NodeId>(cli.flag_int("n", 100'000, "nodes (random graph)"));
  const auto deg = cli.flag_double("deg", 8.0, "average degree (random graph)");
  const auto seed = static_cast<std::uint64_t>(cli.flag_int("seed", 42, "rng seed"));
  const bool engine =
      cli.flag_bool("engine", false, "persist engine state too (version-2 snapshot)");
  const auto priority_seed = static_cast<std::uint64_t>(
      cli.flag_int("priority-seed", 42, "priority seed for --engine"));
  const auto shards = static_cast<std::uint32_t>(cli.flag_int(
      "shards", 0, "write a version-3 snapshot partitioned for this many "
                   "parallel loaders (implies --engine)"));
  cli.finish();

  graph::DynamicGraph g;
  if (!build_graph(trace_path, n, deg, seed, g)) return 1;
  const auto t0 = Clock::now();
  std::string error;
  if (engine || shards > 0) {
    const core::CascadeEngine e(std::move(g), priority_seed);
    const bool ok = shards > 0 ? core::save_snapshot_sharded(e, out, shards, &error)
                               : core::save_snapshot(e, out, &error);
    if (!ok) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    std::printf("saved %s (v%d): %u nodes, %zu edges, |MIS| %zu in %.3fs\n",
                out.c_str(), shards > 0 ? 3 : 2, e.graph().node_count(),
                e.graph().edge_count(), e.mis_size(), seconds_since(t0));
    return 0;
  }
  if (!g.save(out, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::printf("saved %s: %u nodes, %zu edges in %.3fs\n", out.c_str(), g.node_count(),
              g.edge_count(), seconds_since(t0));
  return 0;
}

int cmd_load(util::Cli& cli) {
  const auto in = cli.flag_string("in", "graph.snap", "snapshot input path");
  const bool no_mmap =
      cli.flag_bool("no-mmap", false, "force the read fallback instead of mmap");
  const bool warm = cli.flag_bool(
      "warm", false, "also warm-start a CascadeEngine from the persisted state (v2)");
  const bool borrow = cli.flag_bool(
      "borrow", false,
      "borrow the graph in place (shallow open, zero-copy) instead of "
      "materializing heap copies");
  const auto loaders = static_cast<unsigned>(cli.flag_int(
      "loaders", 1, "parallel bulk-load workers (v3 snapshots; 1 = serial)"));
  cli.finish();

  if (borrow) {
    auto snap = std::make_shared<graph::Snapshot>();
    std::string error;
    const auto t0 = Clock::now();
    if (!snap->open(in, &error, no_mmap, graph::SnapshotValidation::kShallow)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    const double open_s = seconds_since(t0);
    const std::uint64_t priority_seed = snap->priority_seed();
    const bool has_state = snap->has_engine_state();
    const auto t1 = Clock::now();
    const graph::DynamicGraph g = graph::DynamicGraph::borrow(snap);
    // First query, answered off the mapping — what an operator actually
    // waits for after a borrowed open.
    std::uint64_t touched = 0;
    for (NodeId v = 0; v < g.id_bound() && touched < 4; ++v)
      if (g.has_node(v)) touched += g.degree(v) > 0 ? 1 : 0;
    const double borrow_s = seconds_since(t1);
    std::printf("%s: %u nodes, %llu edges (%s, borrowed)\n", in.c_str(),
                snap->node_count(),
                static_cast<unsigned long long>(snap->edge_count()),
                snap->is_mapped() ? "mmap" : "read fallback");
    std::printf("shallow-open %.6fs  borrow+first-query %.6fs  resident %llu "
                "of %llu mapped bytes\n",
                open_s, borrow_s,
                static_cast<unsigned long long>(snap->resident_bytes()),
                static_cast<unsigned long long>(snap->header().file_size));
    if (warm) {
      if (!has_state) {
        std::fprintf(stderr, "error: %s: --warm needs engine state "
                             "(save with --engine)\n",
                     in.c_str());
        return 1;
      }
      // The borrowed warm start goes through the lock-free engine so the
      // shard table (v3) actually fans the bulk copies out.
      const auto t2 = Clock::now();
      const core::LockFreeEngine e(std::move(snap), priority_seed,
                                   graph::SnapshotLoad::kWarm, loaders);
      const double warm_s = seconds_since(t2);
      std::printf("warm engine-ready %.6fs  (|MIS| %zu, fingerprint %016llx, "
                  "%u loaders, borrowed graph)\n",
                  warm_s, e.mis_size(),
                  static_cast<unsigned long long>(membership_fingerprint(e)),
                  e.worker_count());
    }
    return 0;
  }

  graph::Snapshot snap;
  std::string error;
  const auto t0 = Clock::now();
  if (!snap.open(in, &error, no_mmap)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  const double open_s = seconds_since(t0);
  const auto t1 = Clock::now();
  const graph::DynamicGraph g = graph::DynamicGraph::load(snap, loaders);
  const double load_s = seconds_since(t1);
  std::printf("%s: %u nodes, %llu edges (%s)\n", in.c_str(), snap.node_count(),
              static_cast<unsigned long long>(snap.edge_count()),
              snap.is_mapped() ? "mmap" : "read fallback");
  std::printf("open %.6fs  bulk-load %.6fs  (graph: %u live nodes, %zu edges, "
              "%u shards, %u loaders)\n",
              open_s, load_s, g.node_count(), g.edge_count(), snap.shard_count(),
              loaders);
  if (warm) {
    if (!snap.has_engine_state()) {
      std::fprintf(stderr, "error: %s: --warm needs a version-2+ snapshot "
                           "(save with --engine)\n",
                   in.c_str());
      return 1;
    }
    const auto t2 = Clock::now();
    const core::CascadeEngine e(snap, snap.priority_seed(), graph::SnapshotLoad::kWarm);
    const double warm_s = seconds_since(t2);
    std::printf("warm engine-ready %.6fs  (|MIS| %zu, priority seed %llu, "
                "fingerprint %016llx, zero greedy recompute)\n",
                warm_s, e.mis_size(),
                static_cast<unsigned long long>(snap.priority_seed()),
                static_cast<unsigned long long>(membership_fingerprint(e)));
  }
  return 0;
}

int cmd_verify(util::Cli& cli) {
  const auto in = cli.flag_string("in", "graph.snap", "snapshot or .trc trace path");
  cli.finish();

  std::string error;
  if (ends_with(in, ".trc")) {
    workload::TraceFile tf;
    if (!tf.open(in, &error) || !tf.verify(&error)) {
      std::fprintf(stderr, "FAIL: %s\n", error.c_str());
      return 1;
    }
    std::printf("OK: %s — %zu ops, %zu arena slots, checksum valid\n", in.c_str(),
                tf.size(), tf.arena_len());
    return 0;
  }
  graph::Snapshot snap;
  if (!snap.open(in, &error) || !snap.verify(&error)) {
    std::fprintf(stderr, "FAIL: %s\n", error.c_str());
    return 1;
  }
  if (snap.has_engine_state()) {
    std::printf("OK: %s — %u nodes, %llu edges, |MIS| %llu, checksum + deep "
                "consistency valid, membership is the greedy fixpoint of the "
                "persisted keys\n",
                in.c_str(), snap.node_count(),
                static_cast<unsigned long long>(snap.edge_count()),
                static_cast<unsigned long long>(snap.mis_size()));
    return 0;
  }
  std::printf("OK: %s — %u nodes, %llu edges, checksum + deep consistency valid\n",
              in.c_str(), snap.node_count(),
              static_cast<unsigned long long>(snap.edge_count()));
  return 0;
}

int cmd_stats(util::Cli& cli) {
  const auto in = cli.flag_string("in", "graph.snap", "snapshot input path");
  cli.finish();

  graph::Snapshot snap;
  std::string error;
  if (!snap.open(in, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  const auto& h = snap.header();
  std::printf("%s (version %u, %s)\n", in.c_str(), h.version,
              snap.is_mapped() ? "mmap" : "read fallback");
  std::printf("  file size        %llu bytes\n",
              static_cast<unsigned long long>(h.file_size));
  // After open + validation: how much of the mapping the page cache holds
  // (== file size on the read fallback, which buffers everything).
  std::printf("  resident         %llu of %llu mapped bytes\n",
              static_cast<unsigned long long>(snap.resident_bytes()),
              static_cast<unsigned long long>(h.file_size));
  std::printf("  id bound         %u\n", h.id_bound);
  std::printf("  live nodes       %u\n", h.node_count);
  std::printf("  edges            %llu\n", static_cast<unsigned long long>(h.edge_count));
  std::printf("  edge table       %llu/%llu slots occupied (%llu live)\n",
              static_cast<unsigned long long>(h.edge_occupied),
              static_cast<unsigned long long>(h.edge_capacity),
              static_cast<unsigned long long>(h.edge_count));
  std::printf("  sections         alive@%llu offsets@%llu neighbors@%llu "
              "ctrl@%llu keys@%llu\n",
              static_cast<unsigned long long>(h.alive_off),
              static_cast<unsigned long long>(h.offsets_off),
              static_cast<unsigned long long>(h.neighbors_off),
              static_cast<unsigned long long>(h.edge_ctrl_off),
              static_cast<unsigned long long>(h.edge_keys_off));
  if (snap.has_engine_state()) {
    const auto& ext = snap.engine_ext();
    std::printf("  engine state     prio-keys@%llu membership@%llu\n",
                static_cast<unsigned long long>(ext.keys_off),
                static_cast<unsigned long long>(ext.membership_off));
    std::printf("  |MIS|            %llu  (priority seed %llu)\n",
                static_cast<unsigned long long>(ext.mis_size),
                static_cast<unsigned long long>(ext.priority_seed));
  }
  if (snap.shard_count() > 1) {
    std::printf("  shard table      %u shards (v3 parallel warm load)\n",
                snap.shard_count());
    for (std::uint32_t s = 0; s < snap.shard_count(); ++s)
      std::printf("    shard %-2u       ids [%u, %u)\n", s, snap.shard_begin(s),
                  snap.shard_end(s));
  }

  std::vector<std::size_t> degrees;
  degrees.reserve(snap.node_count());
  double deg_sum = 0;
  for (NodeId v = 0; v < snap.id_bound(); ++v) {
    if (!snap.alive(v)) continue;
    const std::uint32_t d = snap.degree(v);
    deg_sum += d;
    degrees.push_back(d);
  }
  const graph::DegreeTail tail = graph::degree_tail_from(std::move(degrees));
  std::printf("  degree           avg %.2f  p50 %zu  p90 %zu  p99 %zu  max %zu\n",
              snap.node_count() > 0 ? deg_sum / snap.node_count() : 0.0, tail.p50,
              tail.p90, tail.p99, tail.maximum);
  std::printf("  spilled-inline   %zu nodes past the %u-slot record (%.2f%%)\n",
              tail.spilled, graph::DynamicGraph::kInlineNeighbors,
              100.0 * tail.spilled_fraction);
  if (tail.tail_exponent > 0.0)
    std::printf("  tail exponent    %.2f (Hill MLE over %zu nodes with degree >= 5)\n",
                tail.tail_exponent, tail.tail_count);
  return 0;
}

int cmd_record(util::Cli& cli) {
  const auto out = cli.flag_string("out", "churn.trc", "binary trace output path");
  const auto n = static_cast<NodeId>(cli.flag_int("n", 100'000, "warm-start nodes"));
  const auto ops =
      static_cast<std::size_t>(cli.flag_int("ops", 100'000, "churn ops to record"));
  const auto deg = cli.flag_double("deg", 8.0, "warm-start average degree");
  const auto seed = static_cast<std::uint64_t>(cli.flag_int("seed", 42, "rng seed"));
  const auto p_abrupt =
      cli.flag_double("p-abrupt", 0.5, "abrupt fraction of deletions");
  cli.finish();

  util::Rng rng(seed);
  graph::DynamicGraph warm = graph::random_avg_degree(n, deg, rng);
  workload::Trace trace = workload::grow_trace(warm);
  workload::ChurnConfig config;
  config.p_abrupt = p_abrupt;
  workload::ChurnGenerator gen(std::move(warm), config, seed + 1);
  const workload::Trace churn = gen.generate(ops);
  trace.insert(trace.end(), churn.begin(), churn.end());

  std::string error;
  if (!workload::TraceFile::save(out, trace, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::printf("recorded %s: %zu ops (%zu grow + %zu churn), self-contained\n",
              out.c_str(), trace.size(), trace.size() - churn.size(), churn.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <save|load|verify|stats|record> [flags]\n"
                 "run a subcommand with --help for its flags\n",
                 argv[0]);
    return 2;
  }
  const std::string cmd = argv[1];
  util::Cli cli(argc - 1, argv + 1);
  if (cmd == "save") return cmd_save(cli);
  if (cmd == "load") return cmd_load(cli);
  if (cmd == "verify") return cmd_verify(cli);
  if (cmd == "stats") return cmd_stats(cli);
  if (cmd == "record") return cmd_record(cli);
  std::fprintf(stderr, "unknown subcommand '%s' (want save|load|verify|stats|record)\n",
               cmd.c_str());
  return 2;
}
