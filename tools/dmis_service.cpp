// dmis_service — operator CLI for the crash-safe dynamic-MIS service
// (service/service.hpp): run a churn workload through a service directory,
// crash it on purpose, recover it, and check the recovered state.
//
//   dmis_service run     --dir d [--ops K --batch B --seed S]
//                        [--policy everyop|everybatch|interval]
//                        [--checkpoint-interval N] [--crash-at L]
//                        ingest the deterministic workload; with --crash-at
//                        the process _exit()s the moment lsn ≥ L — no
//                        close(), no seal, exactly the on-disk shape a
//                        kill -9 leaves (modulo a mid-write tear).
//   dmis_service recover --dir d [--verify --ops K --batch B --seed S]
//                        recover the directory, print the recovery report
//                        and RTO breakdown; with --verify, regenerate the
//                        same workload and check the recovered engine is
//                        differentially identical to a never-crashed
//                        reference at the recovered lsn (graph, membership,
//                        MIS size, priority-RNG state).
//   dmis_service stats   --dir d
//                        list checkpoints and WAL segments with lsn ranges.
//
// The workload is pinned by (--seed, --ops, --batch): grow a random graph
// op by op from empty, then mixed churn — the same recipe the service and
// kill -9 tests use, so `run --crash-at` + `recover --verify` is a
// self-contained crash drill.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "core/batch.hpp"
#include "core/cascade_engine.hpp"
#include "graph/generators.hpp"
#include "service/checkpoint.hpp"
#include "service/service.hpp"
#include "service/wal.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "workload/batched.hpp"
#include "workload/churn.hpp"
#include "workload/trace.hpp"

namespace {

using namespace dmis;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// The pinned workload: identical across run / recover --verify.
std::vector<core::Batch> make_stream(std::uint64_t seed, std::size_t total_ops,
                                     std::size_t ops_per_batch) {
  util::Rng rng(seed);
  graph::DynamicGraph g = graph::random_avg_degree(100, 6.0, rng);
  const workload::Trace grow = workload::grow_trace(g);
  workload::ChurnConfig config;
  config.p_abrupt = 0.4;
  workload::ChurnGenerator gen(g, config, seed + 1);

  std::vector<core::Batch> out;
  core::Batch current;
  const auto flush = [&] {
    if (!current.empty()) {
      out.push_back(current);
      current.clear();
    }
  };
  std::size_t ops = 0;
  for (const workload::GraphOp& op : grow) {
    workload::append_op(current, op);
    ++ops;
    if (current.size() >= ops_per_batch) flush();
  }
  while (ops < total_ops) {
    workload::append_op(current, gen.next());
    ++ops;
    if (current.size() >= ops_per_batch) flush();
  }
  flush();
  return out;
}

void append_slice(core::Batch& out, const core::Batch& b, std::size_t from,
                  std::size_t count) {
  const auto ops = b.ops();
  for (std::size_t i = from; i < from + count && i < ops.size(); ++i) {
    const core::BatchOp& op = ops[i];
    switch (op.kind) {
      case core::BatchOp::Kind::kAddEdge: out.add_edge(op.u, op.v); break;
      case core::BatchOp::Kind::kRemoveEdge: out.remove_edge(op.u, op.v); break;
      case core::BatchOp::Kind::kAddNode: out.add_node(b.neighbors_of(op)); break;
      case core::BatchOp::Kind::kRemoveNode: out.remove_node(op.u); break;
    }
  }
}

/// Reference engine fed the first `ops` ops (splitting a batch if needed).
core::CascadeEngine reference_prefix(const std::vector<core::Batch>& stream,
                                     std::uint64_t ops, std::uint64_t priority_seed) {
  core::CascadeEngine engine(priority_seed);
  core::Batch partial;
  std::uint64_t done = 0;
  for (const core::Batch& b : stream) {
    if (done == ops) break;
    if (done + b.size() <= ops) {
      (void)core::apply_batch(engine, b);
      done += b.size();
    } else {
      partial.clear();
      append_slice(partial, b, 0, static_cast<std::size_t>(ops - done));
      (void)core::apply_batch(engine, partial);
      done = ops;
    }
  }
  return engine;
}

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t n,
                      std::uint64_t h = 0xcbf29ce484222325ULL) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Order-independent engine fingerprint: membership bytes + RNG state. Two
/// engines with equal fingerprints serve the same MIS and will draw the
/// same priorities forever.
std::uint64_t fingerprint(const core::CascadeEngine& engine) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (graph::NodeId v = 0; v < engine.graph().id_bound(); ++v) {
    const std::uint8_t byte = engine.in_mis(v) ? 1 : 0;
    h = fnv1a64(&byte, 1, h);
  }
  const util::Rng::State rng = engine.priorities().rng_state();
  for (const std::uint64_t word : rng)
    h = fnv1a64(reinterpret_cast<const std::uint8_t*>(&word), sizeof(word), h);
  return h;
}

bool parse_policy(const std::string& name, service::FsyncPolicy& out) {
  if (name == "everyop") out = service::FsyncPolicy::kEveryOp;
  else if (name == "everybatch") out = service::FsyncPolicy::kEveryBatch;
  else if (name == "interval") out = service::FsyncPolicy::kInterval;
  else return false;
  return true;
}

int cmd_run(util::Cli& cli) {
  const auto dir = cli.flag_string("dir", "mis-service", "service directory");
  const auto ops = static_cast<std::size_t>(cli.flag_int("ops", 5000, "workload ops"));
  const auto batch_ops =
      static_cast<std::size_t>(cli.flag_int("batch", 8, "ops per batch"));
  const auto seed = static_cast<std::uint64_t>(cli.flag_int("seed", 42, "workload seed"));
  const auto priority_seed =
      static_cast<std::uint64_t>(cli.flag_int("priority-seed", 7, "engine seed"));
  const auto policy_name =
      cli.flag_string("policy", "everybatch", "fsync policy: everyop|everybatch|interval");
  const auto checkpoint_interval = static_cast<std::uint64_t>(
      cli.flag_int("checkpoint-interval", 0, "auto-checkpoint every N ops (0 = never)"));
  const auto crash_at = static_cast<std::uint64_t>(
      cli.flag_int("crash-at", 0, "simulate kill -9 once lsn reaches this (0 = run out)"));
  cli.finish();

  service::ServiceConfig config;
  config.dir = dir;
  config.priority_seed = priority_seed;
  config.checkpoint_interval_ops = checkpoint_interval;
  if (!parse_policy(policy_name, config.fsync)) {
    std::fprintf(stderr, "error: unknown --policy '%s'\n", policy_name.c_str());
    return 1;
  }
  std::string error;
  auto svc = service::MisService::open(config, &error);
  if (!svc.has_value()) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  if (svc->lsn() != 0)
    std::printf("resumed at lsn %llu (checkpoint %llu, %llu ops replayed)\n",
                static_cast<unsigned long long>(svc->lsn()),
                static_cast<unsigned long long>(svc->recovery().checkpoint_lsn),
                static_cast<unsigned long long>(svc->recovery().replayed_ops));

  const auto stream = make_stream(seed, ops, batch_ops);
  const auto t0 = Clock::now();
  std::uint64_t skipped = 0;
  for (const core::Batch& batch : stream) {
    // Idempotent restart: skip batches the directory already holds.
    if (svc->lsn() >= skipped + batch.size()) {
      skipped += batch.size();
      continue;
    }
    if (!svc->apply(batch, &error)) {
      std::fprintf(stderr, "error: apply at lsn %llu: %s\n",
                   static_cast<unsigned long long>(svc->lsn()), error.c_str());
      return 1;
    }
    skipped += batch.size();
    if (crash_at != 0 && svc->lsn() >= crash_at) {
      std::printf("crash-at %llu reached at lsn %llu — dying without close "
                  "(fingerprint %016llx)\n",
                  static_cast<unsigned long long>(crash_at),
                  static_cast<unsigned long long>(svc->lsn()),
                  static_cast<unsigned long long>(fingerprint(svc->engine())));
      std::fflush(stdout);
#if defined(__unix__) || defined(__APPLE__)
      _exit(137);  // the kill -9 exit code; no destructors, no seal
#else
      std::abort();
#endif
    }
  }
  const double run_s = seconds_since(t0);
  const std::uint64_t lsn = svc->lsn();
  std::printf("ingested to lsn %llu in %.3fs (%.0f ops/s), |MIS| %zu, "
              "wal %llu bytes, %llu checkpoints (%llu bytes), fingerprint %016llx\n",
              static_cast<unsigned long long>(lsn), run_s,
              run_s > 0 ? static_cast<double>(lsn) / run_s : 0.0,
              svc->engine().mis_size(),
              static_cast<unsigned long long>(svc->wal_bytes_appended()),
              static_cast<unsigned long long>(svc->checkpoints_taken()),
              static_cast<unsigned long long>(svc->checkpoint_bytes()),
              static_cast<unsigned long long>(fingerprint(svc->engine())));
  if (!svc->close(&error)) {
    std::fprintf(stderr, "error: close: %s\n", error.c_str());
    return 1;
  }
  return 0;
}

int cmd_recover(util::Cli& cli) {
  const auto dir = cli.flag_string("dir", "mis-service", "service directory");
  const bool verify = cli.flag_bool(
      "verify", false, "check the recovered engine against the regenerated workload");
  const auto ops = static_cast<std::size_t>(
      cli.flag_int("ops", 5000, "workload ops (--verify; must match run)"));
  const auto batch_ops = static_cast<std::size_t>(
      cli.flag_int("batch", 8, "ops per batch (--verify; must match run)"));
  const auto seed = static_cast<std::uint64_t>(
      cli.flag_int("seed", 42, "workload seed (--verify; must match run)"));
  const auto priority_seed =
      static_cast<std::uint64_t>(cli.flag_int("priority-seed", 7, "engine seed"));
  cli.finish();

  service::ServiceConfig config;
  config.dir = dir;
  config.priority_seed = priority_seed;
  const auto t0 = Clock::now();
  std::string error;
  auto svc = service::MisService::open(config, &error);
  if (!svc.has_value()) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  const double rto_s = seconds_since(t0);
  const service::RecoveryReport& r = svc->recovery();
  std::printf("recovered to lsn %llu: checkpoint %llu (%s), %llu records / %llu ops "
              "replayed, %llu segments%s\n",
              static_cast<unsigned long long>(r.recovered_lsn),
              static_cast<unsigned long long>(r.checkpoint_lsn),
              r.checkpoint_path.empty() ? "none" : r.checkpoint_path.c_str(),
              static_cast<unsigned long long>(r.records_replayed),
              static_cast<unsigned long long>(r.replayed_ops),
              static_cast<unsigned long long>(r.segments_scanned),
              r.torn_tail ? ", torn tail shed" : "");
  std::printf("rto %.6fs = open %.6fs + warm %.6fs + replay %.6fs (+ wal writer)\n",
              rto_s, r.open_s, r.warm_s, r.replay_s);
  if (!r.detail.empty()) std::printf("detail:\n%s", r.detail.c_str());
  std::printf("|MIS| %zu, fingerprint %016llx\n", svc->engine().mis_size(),
              static_cast<unsigned long long>(fingerprint(svc->engine())));

  if (verify) {
    const auto stream = make_stream(seed, ops, batch_ops);
    std::uint64_t total = 0;
    for (const auto& b : stream) total += b.size();
    if (r.recovered_lsn > total) {
      std::fprintf(stderr, "FAIL: recovered lsn %llu beyond the %llu-op workload "
                           "(wrong --ops/--seed?)\n",
                   static_cast<unsigned long long>(r.recovered_lsn),
                   static_cast<unsigned long long>(total));
      return 1;
    }
    const core::CascadeEngine ref = reference_prefix(stream, r.recovered_lsn,
                                                     priority_seed);
    const bool same_graph = svc->engine().graph() == ref.graph();
    const bool same_membership = svc->engine().membership() == ref.membership();
    const bool same_rng =
        svc->engine().priorities().rng_state() == ref.priorities().rng_state();
    if (!same_graph || !same_membership || !same_rng) {
      std::fprintf(stderr,
                   "FAIL: recovered state diverges from the reference at lsn %llu "
                   "(graph %d, membership %d, rng %d)\n",
                   static_cast<unsigned long long>(r.recovered_lsn), same_graph,
                   same_membership, same_rng);
      return 1;
    }
    svc->engine().verify();
    std::printf("OK: recovered engine is differentially identical to the reference "
                "at lsn %llu (graph, membership, |MIS| %zu, rng)\n",
                static_cast<unsigned long long>(r.recovered_lsn),
                svc->engine().mis_size());
  }
  if (!svc->close(&error)) {
    std::fprintf(stderr, "error: close: %s\n", error.c_str());
    return 1;
  }
  return 0;
}

int cmd_stats(util::Cli& cli) {
  const auto dir = cli.flag_string("dir", "mis-service", "service directory");
  cli.finish();

  const auto checkpoints = service::list_checkpoints(dir);
  std::printf("%zu checkpoint(s):\n", checkpoints.size());
  for (const auto& cp : checkpoints)
    std::printf("  %s  lsn %llu\n", cp.path.c_str(),
                static_cast<unsigned long long>(cp.lsn));
  std::vector<std::string> skipped;
  const auto segments = service::list_segments(dir, &skipped);
  std::printf("%zu wal segment(s):\n", segments.size());
  for (const auto& seg : segments) {
    service::WalSegmentReader reader;
    std::string error;
    if (!reader.open(seg.path, &error)) {
      std::printf("  %s  UNREADABLE: %s\n", seg.path.c_str(), error.c_str());
      continue;
    }
    service::WalRecordView view;
    std::uint64_t records = 0;
    service::WalSegmentReader::Next state;
    while ((state = reader.next(&view)) == service::WalSegmentReader::Next::kRecord)
      ++records;
    const char* tail = state == service::WalSegmentReader::Next::kSealed ? "sealed"
                       : state == service::WalSegmentReader::Next::kEnd  ? "unsealed"
                                                                         : "torn";
    std::printf("  %s  seq %llu, lsn [%llu, %llu), %llu records, %s\n",
                seg.path.c_str(), static_cast<unsigned long long>(seg.seq),
                static_cast<unsigned long long>(seg.base_lsn),
                static_cast<unsigned long long>(reader.next_lsn()),
                static_cast<unsigned long long>(records), tail);
    if (state == service::WalSegmentReader::Next::kTorn)
      std::printf("    %s\n", reader.tail_detail().c_str());
  }
  for (const auto& s : skipped) std::printf("  skipped: %s\n", s.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <run|recover|stats> [flags]\n"
                 "run a subcommand with --help for its flags\n",
                 argv[0]);
    return 2;
  }
  const std::string cmd = argv[1];
  dmis::util::Cli cli(argc - 1, argv + 1);
  if (cmd == "run") return cmd_run(cli);
  if (cmd == "recover") return cmd_recover(cli);
  if (cmd == "stats") return cmd_stats(cli);
  std::fprintf(stderr, "unknown subcommand '%s' (want run|recover|stats)\n",
               cmd.c_str());
  return 2;
}
