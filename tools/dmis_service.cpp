// dmis_service — operator CLI for the crash-safe dynamic-MIS service
// (service/service.hpp): run a churn workload through a service directory,
// crash it on purpose, recover it, and check the recovered state.
//
//   dmis_service run     --dir d [--ops K --batch B --seed S]
//                        [--policy everyop|everybatch|interval]
//                        [--checkpoint-interval N] [--crash-at L]
//                        ingest the deterministic workload; with --crash-at
//                        the process _exit()s the moment lsn ≥ L — no
//                        close(), no seal, exactly the on-disk shape a
//                        kill -9 leaves (modulo a mid-write tear).
//   dmis_service recover --dir d [--verify --ops K --batch B --seed S]
//                        recover the directory, print the recovery report
//                        and RTO breakdown; with --verify, regenerate the
//                        same workload and check the recovered engine is
//                        differentially identical to a never-crashed
//                        reference at the recovered lsn (graph, membership,
//                        MIS size, priority-RNG state).
//   dmis_service serve   --dir d [--producers P --ops K --batch B --seed S]
//                        [--policy ...] [--crash-at L]
//                        concurrent ingest: P producer threads submit edge
//                        toggles through IngestQueue, the consumer thread
//                        admission-batches them into the service. Each
//                        producer owns a hash partition of the edge space,
//                        so any admission interleaving is a valid op
//                        stream; the WAL records the one the consumer
//                        chose. The printed fingerprint therefore must
//                        equal a later `recover`'s — that pair is the
//                        concurrent-ingest differential check.
//   dmis_service follow  --dir f --leader-dir d [--until-lsn L]
//                        [--drop/--dup/--reorder/--trunc p --fault-seed S]
//                        ship the leader directory into follower dir f
//                        (optionally through a seeded faulty transport)
//                        and tail-apply until caught up (or --until-lsn).
//   dmis_service promote --dir f [--verify --ops K --batch B --seed S]
//                        promote follower dir f to a serving leader
//                        (fresh WAL segment based at the applied lsn),
//                        print the RTO; --verify checks the promoted
//                        engine against the regenerated workload prefix.
//   dmis_service stats   --dir d [--json]
//                        list checkpoints (with resident vs mapped bytes from
//                        a shallow zero-copy open) and WAL segments with lsn
//                        ranges, plus the open mode recovery will use
//                        (borrowed vs materialized).
//
// The workload is pinned by (--seed, --ops, --batch): grow a random graph
// op by op from empty, then mixed churn — the same recipe the service and
// kill -9 tests use, so `run --crash-at` + `recover --verify` is a
// self-contained crash drill, and `run --crash-at` + `follow` + `promote
// --verify` is a self-contained failover drill.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "core/batch.hpp"
#include "core/cascade_engine.hpp"
#include "graph/generators.hpp"
#include "graph/snapshot.hpp"
#include "service/checkpoint.hpp"
#include "service/ingest.hpp"
#include "service/replication.hpp"
#include "service/service.hpp"
#include "service/wal.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workload/batched.hpp"
#include "workload/churn.hpp"
#include "workload/trace.hpp"

namespace {

using namespace dmis;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// The pinned workload: identical across run / recover --verify.
std::vector<core::Batch> make_stream(std::uint64_t seed, std::size_t total_ops,
                                     std::size_t ops_per_batch) {
  util::Rng rng(seed);
  graph::DynamicGraph g = graph::random_avg_degree(100, 6.0, rng);
  const workload::Trace grow = workload::grow_trace(g);
  workload::ChurnConfig config;
  config.p_abrupt = 0.4;
  workload::ChurnGenerator gen(g, config, seed + 1);

  std::vector<core::Batch> out;
  core::Batch current;
  const auto flush = [&] {
    if (!current.empty()) {
      out.push_back(current);
      current.clear();
    }
  };
  std::size_t ops = 0;
  for (const workload::GraphOp& op : grow) {
    workload::append_op(current, op);
    ++ops;
    if (current.size() >= ops_per_batch) flush();
  }
  while (ops < total_ops) {
    workload::append_op(current, gen.next());
    ++ops;
    if (current.size() >= ops_per_batch) flush();
  }
  flush();
  return out;
}

void append_slice(core::Batch& out, const core::Batch& b, std::size_t from,
                  std::size_t count) {
  const auto ops = b.ops();
  for (std::size_t i = from; i < from + count && i < ops.size(); ++i) {
    const core::BatchOp& op = ops[i];
    switch (op.kind) {
      case core::BatchOp::Kind::kAddEdge: out.add_edge(op.u, op.v); break;
      case core::BatchOp::Kind::kRemoveEdge: out.remove_edge(op.u, op.v); break;
      case core::BatchOp::Kind::kAddNode: out.add_node(b.neighbors_of(op)); break;
      case core::BatchOp::Kind::kRemoveNode: out.remove_node(op.u); break;
    }
  }
}

/// Reference engine fed the first `ops` ops (splitting a batch if needed).
core::CascadeEngine reference_prefix(const std::vector<core::Batch>& stream,
                                     std::uint64_t ops, std::uint64_t priority_seed) {
  core::CascadeEngine engine(priority_seed);
  core::Batch partial;
  std::uint64_t done = 0;
  for (const core::Batch& b : stream) {
    if (done == ops) break;
    if (done + b.size() <= ops) {
      (void)core::apply_batch(engine, b);
      done += b.size();
    } else {
      partial.clear();
      append_slice(partial, b, 0, static_cast<std::size_t>(ops - done));
      (void)core::apply_batch(engine, partial);
      done = ops;
    }
  }
  return engine;
}

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t n,
                      std::uint64_t h = 0xcbf29ce484222325ULL) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Order-independent engine fingerprint: membership bytes + RNG state. Two
/// engines with equal fingerprints serve the same MIS and will draw the
/// same priorities forever.
std::uint64_t fingerprint(const core::CascadeEngine& engine) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (graph::NodeId v = 0; v < engine.graph().id_bound(); ++v) {
    const std::uint8_t byte = engine.in_mis(v) ? 1 : 0;
    h = fnv1a64(&byte, 1, h);
  }
  const util::Rng::State rng = engine.priorities().rng_state();
  for (const std::uint64_t word : rng)
    h = fnv1a64(reinterpret_cast<const std::uint8_t*>(&word), sizeof(word), h);
  return h;
}

bool parse_policy(const std::string& name, service::FsyncPolicy& out) {
  if (name == "everyop") out = service::FsyncPolicy::kEveryOp;
  else if (name == "everybatch") out = service::FsyncPolicy::kEveryBatch;
  else if (name == "interval") out = service::FsyncPolicy::kInterval;
  else return false;
  return true;
}

int cmd_run(util::Cli& cli) {
  const auto dir = cli.flag_string("dir", "mis-service", "service directory");
  const auto ops = static_cast<std::size_t>(cli.flag_int("ops", 5000, "workload ops"));
  const auto batch_ops =
      static_cast<std::size_t>(cli.flag_int("batch", 8, "ops per batch"));
  const auto seed = static_cast<std::uint64_t>(cli.flag_int("seed", 42, "workload seed"));
  const auto priority_seed =
      static_cast<std::uint64_t>(cli.flag_int("priority-seed", 7, "engine seed"));
  const auto policy_name =
      cli.flag_string("policy", "everybatch", "fsync policy: everyop|everybatch|interval");
  const auto checkpoint_interval = static_cast<std::uint64_t>(
      cli.flag_int("checkpoint-interval", 0, "auto-checkpoint every N ops (0 = never)"));
  const auto crash_at = static_cast<std::uint64_t>(
      cli.flag_int("crash-at", 0, "simulate kill -9 once lsn reaches this (0 = run out)"));
  cli.finish();

  service::ServiceConfig config;
  config.dir = dir;
  config.priority_seed = priority_seed;
  config.checkpoint_interval_ops = checkpoint_interval;
  if (!parse_policy(policy_name, config.fsync)) {
    std::fprintf(stderr, "error: unknown --policy '%s'\n", policy_name.c_str());
    return 1;
  }
  std::string error;
  auto svc = service::MisService::open(config, &error);
  if (!svc.has_value()) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  if (svc->lsn() != 0)
    std::printf("resumed at lsn %llu (checkpoint %llu, %llu ops replayed)\n",
                static_cast<unsigned long long>(svc->lsn()),
                static_cast<unsigned long long>(svc->recovery().checkpoint_lsn),
                static_cast<unsigned long long>(svc->recovery().replayed_ops));

  const auto stream = make_stream(seed, ops, batch_ops);
  const auto t0 = Clock::now();
  std::uint64_t skipped = 0;
  for (const core::Batch& batch : stream) {
    // Idempotent restart: skip batches the directory already holds.
    if (svc->lsn() >= skipped + batch.size()) {
      skipped += batch.size();
      continue;
    }
    if (!svc->apply(batch, &error)) {
      std::fprintf(stderr, "error: apply at lsn %llu: %s\n",
                   static_cast<unsigned long long>(svc->lsn()), error.c_str());
      return 1;
    }
    skipped += batch.size();
    if (crash_at != 0 && svc->lsn() >= crash_at) {
      std::printf("crash-at %llu reached at lsn %llu — dying without close "
                  "(fingerprint %016llx)\n",
                  static_cast<unsigned long long>(crash_at),
                  static_cast<unsigned long long>(svc->lsn()),
                  static_cast<unsigned long long>(fingerprint(svc->engine())));
      std::fflush(stdout);
#if defined(__unix__) || defined(__APPLE__)
      _exit(137);  // the kill -9 exit code; no destructors, no seal
#else
      std::abort();
#endif
    }
  }
  const double run_s = seconds_since(t0);
  const std::uint64_t lsn = svc->lsn();
  std::printf("ingested to lsn %llu in %.3fs (%.0f ops/s), |MIS| %zu, "
              "wal %llu bytes, %llu checkpoints (%llu bytes), fingerprint %016llx\n",
              static_cast<unsigned long long>(lsn), run_s,
              run_s > 0 ? static_cast<double>(lsn) / run_s : 0.0,
              svc->engine().mis_size(),
              static_cast<unsigned long long>(svc->wal_bytes_appended()),
              static_cast<unsigned long long>(svc->checkpoints_taken()),
              static_cast<unsigned long long>(svc->checkpoint_bytes()),
              static_cast<unsigned long long>(fingerprint(svc->engine())));
  if (!svc->close(&error)) {
    std::fprintf(stderr, "error: close: %s\n", error.c_str());
    return 1;
  }
  return 0;
}

int cmd_recover(util::Cli& cli) {
  const auto dir = cli.flag_string("dir", "mis-service", "service directory");
  const bool verify = cli.flag_bool(
      "verify", false, "check the recovered engine against the regenerated workload");
  const auto ops = static_cast<std::size_t>(
      cli.flag_int("ops", 5000, "workload ops (--verify; must match run)"));
  const auto batch_ops = static_cast<std::size_t>(
      cli.flag_int("batch", 8, "ops per batch (--verify; must match run)"));
  const auto seed = static_cast<std::uint64_t>(
      cli.flag_int("seed", 42, "workload seed (--verify; must match run)"));
  const auto priority_seed =
      static_cast<std::uint64_t>(cli.flag_int("priority-seed", 7, "engine seed"));
  cli.finish();

  service::ServiceConfig config;
  config.dir = dir;
  config.priority_seed = priority_seed;
  const auto t0 = Clock::now();
  std::string error;
  auto svc = service::MisService::open(config, &error);
  if (!svc.has_value()) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  const double rto_s = seconds_since(t0);
  const service::RecoveryReport& r = svc->recovery();
  std::printf("recovered to lsn %llu: checkpoint %llu (%s), %llu records / %llu ops "
              "replayed, %llu segments%s\n",
              static_cast<unsigned long long>(r.recovered_lsn),
              static_cast<unsigned long long>(r.checkpoint_lsn),
              r.checkpoint_path.empty() ? "none" : r.checkpoint_path.c_str(),
              static_cast<unsigned long long>(r.records_replayed),
              static_cast<unsigned long long>(r.replayed_ops),
              static_cast<unsigned long long>(r.segments_scanned),
              r.torn_tail ? ", torn tail shed" : "");
  std::printf("rto %.6fs = open %.6fs + %s %.6fs + warm %.6fs + replay %.6fs "
              "(+ wal writer)\n",
              rto_s, r.open_s, r.borrowed ? "borrow" : "load", r.load_s,
              r.warm_s, r.replay_s);
  if (!r.detail.empty()) std::printf("detail:\n%s", r.detail.c_str());
  std::printf("|MIS| %zu, fingerprint %016llx\n", svc->engine().mis_size(),
              static_cast<unsigned long long>(fingerprint(svc->engine())));

  if (verify) {
    const auto stream = make_stream(seed, ops, batch_ops);
    std::uint64_t total = 0;
    for (const auto& b : stream) total += b.size();
    if (r.recovered_lsn > total) {
      std::fprintf(stderr, "FAIL: recovered lsn %llu beyond the %llu-op workload "
                           "(wrong --ops/--seed?)\n",
                   static_cast<unsigned long long>(r.recovered_lsn),
                   static_cast<unsigned long long>(total));
      return 1;
    }
    const core::CascadeEngine ref = reference_prefix(stream, r.recovered_lsn,
                                                     priority_seed);
    const bool same_graph = svc->engine().graph() == ref.graph();
    const bool same_membership = svc->engine().membership() == ref.membership();
    const bool same_rng =
        svc->engine().priorities().rng_state() == ref.priorities().rng_state();
    if (!same_graph || !same_membership || !same_rng) {
      std::fprintf(stderr,
                   "FAIL: recovered state diverges from the reference at lsn %llu "
                   "(graph %d, membership %d, rng %d)\n",
                   static_cast<unsigned long long>(r.recovered_lsn), same_graph,
                   same_membership, same_rng);
      return 1;
    }
    svc->engine().verify();
    std::printf("OK: recovered engine is differentially identical to the reference "
                "at lsn %llu (graph, membership, |MIS| %zu, rng)\n",
                static_cast<unsigned long long>(r.recovered_lsn),
                svc->engine().mis_size());
  }
  if (!svc->close(&error)) {
    std::fprintf(stderr, "error: close: %s\n", error.c_str());
    return 1;
  }
  return 0;
}

/// Concurrent ingest: P producers toggle edges in their own hash partition
/// of the pairs over [0, nodes); the consumer (this thread) drains, applies,
/// acks. Partitioned ownership + per-lane FIFO makes every admission
/// interleaving a valid stream, so the WAL'd serialization is self-
/// consistent — recover must reproduce the printed fingerprint exactly.
int cmd_serve(util::Cli& cli) {
  const auto dir = cli.flag_string("dir", "mis-service", "service directory");
  const auto producers = static_cast<unsigned>(
      cli.flag_int("producers", 4, "producer threads (ingest lanes)"));
  const auto ops =
      static_cast<std::uint64_t>(cli.flag_int("ops", 20000, "total client ops"));
  const auto batch_ops = static_cast<std::size_t>(
      cli.flag_int("batch", 64, "max ops per admission batch"));
  const auto nodes =
      static_cast<std::uint64_t>(cli.flag_int("nodes", 100, "base node count"));
  const auto seed =
      static_cast<std::uint64_t>(cli.flag_int("seed", 42, "workload seed"));
  const auto priority_seed =
      static_cast<std::uint64_t>(cli.flag_int("priority-seed", 7, "engine seed"));
  const auto policy_name =
      cli.flag_string("policy", "everybatch", "fsync policy: everyop|everybatch|interval");
  const auto checkpoint_interval = static_cast<std::uint64_t>(
      cli.flag_int("checkpoint-interval", 0, "auto-checkpoint every N ops (0 = never)"));
  const auto crash_at = static_cast<std::uint64_t>(
      cli.flag_int("crash-at", 0, "simulate kill -9 once lsn reaches this (0 = run out)"));
  cli.finish();

  if (producers == 0 || nodes < 2) {
    std::fprintf(stderr, "error: need --producers >= 1 and --nodes >= 2\n");
    return 1;
  }
  service::ServiceConfig config;
  config.dir = dir;
  config.priority_seed = priority_seed;
  config.checkpoint_interval_ops = checkpoint_interval;
  if (!parse_policy(policy_name, config.fsync)) {
    std::fprintf(stderr, "error: unknown --policy '%s'\n", policy_name.c_str());
    return 1;
  }
  std::string error;
  auto svc = service::MisService::open(config, &error);
  if (!svc.has_value()) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  if (svc->lsn() != 0) {
    std::fprintf(stderr, "error: serve needs a fresh directory (lsn %llu != 0); "
                         "producers assume every owned edge starts absent\n",
                 static_cast<unsigned long long>(svc->lsn()));
    return 1;
  }

  // Seed the base nodes up front, before any concurrency.
  {
    core::Batch base;
    for (std::uint64_t i = 0; i < nodes; ++i)
      base.add_node(std::span<const graph::NodeId>{});
    if (!svc->apply(base, &error)) {
      std::fprintf(stderr, "error: seeding base nodes: %s\n", error.c_str());
      return 1;
    }
  }

  service::IngestOptions ingest_options;
  ingest_options.producers = producers;
  ingest_options.max_batch_ops = batch_ops;
  service::IngestQueue queue(ingest_options);
  const std::uint64_t per_producer = ops / producers;

  // (u, v) with u < v belongs to exactly one producer.
  const auto owner = [&](std::uint64_t u, std::uint64_t v) {
    return static_cast<unsigned>((u * 2654435761ULL + v * 40503ULL) % producers);
  };

  std::atomic<bool> producers_done{false};
  util::ThreadPool pool(producers);
  std::thread driver([&] {
    pool.run_indexed(producers, [&](unsigned p) {
      util::Rng rng(seed * 9176 + p);
      // Local view of the producer's own edges; nobody else touches them,
      // so validity (add absent / remove present) holds under any
      // cross-lane interleaving the consumer picks.
      std::vector<bool> present(nodes * nodes, false);
      for (std::uint64_t i = 0; i < per_producer; ++i) {
        std::uint64_t u, v;
        do {
          u = rng.below(nodes);
          v = rng.below(nodes);
          if (u > v) std::swap(u, v);
        } while (u == v || owner(u, v) != p);
        const std::uint64_t slot = u * nodes + v;
        const bool had = present[slot];
        present[slot] = !had;
        queue.submit(p, had ? service::ClientOp::remove_edge(u, v)
                            : service::ClientOp::add_edge(u, v));
      }
    });
    producers_done.store(true, std::memory_order_release);
  });

  const std::uint64_t expected = nodes + per_producer * producers;
  const auto t0 = Clock::now();
  core::Batch batch;
  bool crashed_requested = false;
  while (svc->lsn() < expected) {
    const std::size_t drained = queue.drain(batch);
    if (drained == 0) {
      if (producers_done.load(std::memory_order_acquire) && queue.drain(batch) == 0)
        break;
      std::this_thread::yield();
      continue;
    }
    if (!svc->apply(batch, &error)) {
      std::fprintf(stderr, "error: apply at lsn %llu: %s\n",
                   static_cast<unsigned long long>(svc->lsn()), error.c_str());
      return 1;
    }
    queue.ack();
    if (crash_at != 0 && svc->lsn() >= crash_at) {
      crashed_requested = true;
      break;
    }
  }
  if (crashed_requested) {
    std::printf("crash-at %llu reached at lsn %llu — dying without close "
                "(fingerprint %016llx)\n",
                static_cast<unsigned long long>(crash_at),
                static_cast<unsigned long long>(svc->lsn()),
                static_cast<unsigned long long>(fingerprint(svc->engine())));
    std::fflush(stdout);
#if defined(__unix__) || defined(__APPLE__)
    _exit(137);  // producers never joined — exactly what kill -9 does
#else
    std::abort();
#endif
  }
  driver.join();
  const double run_s = seconds_since(t0);

  std::uint64_t waits = 0;
  for (unsigned p = 0; p < producers; ++p) waits += queue.backpressure_waits(p);
  for (unsigned p = 0; p < producers; ++p) {
    if (queue.acked(p) != queue.submitted(p)) {
      std::fprintf(stderr, "FAIL: lane %u acked %llu != submitted %llu\n", p,
                   static_cast<unsigned long long>(queue.acked(p)),
                   static_cast<unsigned long long>(queue.submitted(p)));
      return 1;
    }
  }
  std::printf("served %llu ops from %u producers to lsn %llu in %.3fs "
              "(%.0f ops/s), %llu backpressure waits, |MIS| %zu, "
              "fingerprint %016llx\n",
              static_cast<unsigned long long>(queue.total_acked()), producers,
              static_cast<unsigned long long>(svc->lsn()), run_s,
              run_s > 0 ? static_cast<double>(svc->lsn()) / run_s : 0.0,
              static_cast<unsigned long long>(waits), svc->engine().mis_size(),
              static_cast<unsigned long long>(fingerprint(svc->engine())));
  if (!svc->close(&error)) {
    std::fprintf(stderr, "error: close: %s\n", error.c_str());
    return 1;
  }
  return 0;
}

int cmd_follow(util::Cli& cli) {
  const auto dir = cli.flag_string("dir", "mis-follower", "follower directory");
  const auto leader_dir =
      cli.flag_string("leader-dir", "mis-service", "leader directory to ship from");
  const auto until_lsn = static_cast<std::uint64_t>(cli.flag_int(
      "until-lsn", 0, "stop once this lsn is applied (0 = ship everything durable)"));
  const auto max_pumps = static_cast<std::uint64_t>(
      cli.flag_int("max-pumps", 1 << 22, "shipper tick budget"));
  const auto chunk = static_cast<std::uint64_t>(
      cli.flag_int("chunk", 64 << 10, "shipment chunk bytes"));
  const double drop = cli.flag_double("drop", 0.0, "P(shipment dropped)");
  const double dup = cli.flag_double("dup", 0.0, "P(shipment duplicated)");
  const double reorder = cli.flag_double("reorder", 0.0, "P(shipment held + reordered)");
  const double trunc = cli.flag_double("trunc", 0.0, "P(shipment payload torn)");
  const auto fault_seed =
      static_cast<std::uint64_t>(cli.flag_int("fault-seed", 1, "transport fault seed"));
  const auto priority_seed = static_cast<std::uint64_t>(
      cli.flag_int("priority-seed", 7, "engine seed (cold start only)"));
  cli.finish();

  std::string error;
  service::FollowerOptions options;
  options.priority_seed = priority_seed;
  auto follower = service::FollowerService::open(dir, options, &error);
  if (!follower.has_value()) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  service::DirectTransport direct(&*follower);
  service::TransportFaults faults;
  faults.drop = drop;
  faults.duplicate = dup;
  faults.reorder = reorder;
  faults.truncate = trunc;
  faults.seed = fault_seed;
  service::FaultyTransport faulty(&direct, faults);
  const bool lossy = drop > 0 || dup > 0 || reorder > 0 || trunc > 0;
  service::ShipmentTransport* transport =
      lossy ? static_cast<service::ShipmentTransport*>(&faulty) : &direct;
  service::LogShipperOptions ship_options;
  ship_options.chunk_bytes = chunk;
  service::LogShipper shipper(leader_dir, transport, ship_options);

  const auto t0 = Clock::now();
  std::uint64_t pumps = 0;
  bool idle = false;
  while (pumps < max_pumps) {
    const auto state = shipper.pump(&error);
    ++pumps;
    if (state == service::LogShipper::Pump::kError) {
      std::fprintf(stderr, "error: pump: %s\n", error.c_str());
      return 1;
    }
    if (!follower->poll(&error)) {
      std::fprintf(stderr, "error: poll: %s\n", error.c_str());
      return 1;
    }
    if (until_lsn != 0 && follower->applied_lsn() >= until_lsn) break;
    if (state == service::LogShipper::Pump::kIdle) {
      idle = true;
      break;
    }
  }
  const double ship_s = seconds_since(t0);
  const service::FollowerStats& fs = follower->stats();
  const service::ShipperStats& ss = shipper.stats();
  std::printf("followed to lsn %llu in %.3fs (%s after %llu pumps): "
              "%llu shipments (%llu delivered, %llu lost, %llu rewinds, "
              "%llu bytes), follower %llu accepted / %llu rejected, "
              "%llu checkpoints published, %llu rewarms, %llu ops applied\n",
              static_cast<unsigned long long>(follower->applied_lsn()), ship_s,
              idle ? "idle" : "target reached",
              static_cast<unsigned long long>(pumps),
              static_cast<unsigned long long>(ss.shipments),
              static_cast<unsigned long long>(ss.delivered),
              static_cast<unsigned long long>(ss.lost),
              static_cast<unsigned long long>(ss.rewinds),
              static_cast<unsigned long long>(ss.bytes_shipped),
              static_cast<unsigned long long>(fs.chunks_accepted),
              static_cast<unsigned long long>(fs.chunks_rejected),
              static_cast<unsigned long long>(fs.checkpoints_published),
              static_cast<unsigned long long>(fs.rewarms),
              static_cast<unsigned long long>(fs.ops_applied));
  if (lossy)
    std::printf("transport faults: %llu dropped, %llu duplicated, %llu reordered, "
                "%llu torn\n",
                static_cast<unsigned long long>(faulty.drops()),
                static_cast<unsigned long long>(faulty.duplicates()),
                static_cast<unsigned long long>(faulty.reorders()),
                static_cast<unsigned long long>(faulty.truncations()));
  if (follower->has_engine())
    std::printf("fingerprint %016llx\n",
                static_cast<unsigned long long>(fingerprint(follower->engine())));
  if (until_lsn != 0 && follower->applied_lsn() < until_lsn) {
    std::fprintf(stderr, "FAIL: applied lsn %llu short of --until-lsn %llu\n",
                 static_cast<unsigned long long>(follower->applied_lsn()),
                 static_cast<unsigned long long>(until_lsn));
    return 1;
  }
  return 0;
}

int cmd_promote(util::Cli& cli) {
  const auto dir = cli.flag_string("dir", "mis-follower", "follower directory");
  const bool verify = cli.flag_bool(
      "verify", false, "check the promoted engine against the regenerated workload");
  const auto ops = static_cast<std::size_t>(
      cli.flag_int("ops", 5000, "workload ops (--verify; must match the leader's run)"));
  const auto batch_ops = static_cast<std::size_t>(
      cli.flag_int("batch", 8, "ops per batch (--verify; must match run)"));
  const auto seed = static_cast<std::uint64_t>(
      cli.flag_int("seed", 42, "workload seed (--verify; must match run)"));
  const auto priority_seed =
      static_cast<std::uint64_t>(cli.flag_int("priority-seed", 7, "engine seed"));
  cli.finish();

  std::string error;
  service::FollowerOptions options;
  options.priority_seed = priority_seed;
  const auto t0 = Clock::now();
  auto follower = service::FollowerService::open(dir, options, &error);
  if (!follower.has_value()) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  service::ServiceConfig config;
  config.dir = dir;
  config.priority_seed = priority_seed;
  auto svc = follower->promote(config, &error);
  if (!svc.has_value()) {
    std::fprintf(stderr, "error: promote: %s\n", error.c_str());
    return 1;
  }
  const double rto_s = seconds_since(t0);
  std::printf("promoted to leader at lsn %llu in %.6fs (wal segment %llu), "
              "|MIS| %zu, fingerprint %016llx\n",
              static_cast<unsigned long long>(svc->lsn()), rto_s,
              static_cast<unsigned long long>(svc->wal_segment_seq()),
              svc->engine().mis_size(),
              static_cast<unsigned long long>(fingerprint(svc->engine())));

  if (verify) {
    const auto stream = make_stream(seed, ops, batch_ops);
    const core::CascadeEngine ref =
        reference_prefix(stream, svc->lsn(), priority_seed);
    const bool same_graph = svc->engine().graph() == ref.graph();
    const bool same_membership = svc->engine().membership() == ref.membership();
    const bool same_rng =
        svc->engine().priorities().rng_state() == ref.priorities().rng_state();
    if (!same_graph || !same_membership || !same_rng) {
      std::fprintf(stderr,
                   "FAIL: promoted state diverges from the reference at lsn %llu "
                   "(graph %d, membership %d, rng %d)\n",
                   static_cast<unsigned long long>(svc->lsn()), same_graph,
                   same_membership, same_rng);
      return 1;
    }
    svc->engine().verify();
    std::printf("OK: promoted engine is differentially identical to the reference "
                "at lsn %llu (graph, membership, |MIS| %zu, rng)\n",
                static_cast<unsigned long long>(svc->lsn()),
                svc->engine().mis_size());
  }
  if (!svc->close(&error)) {
    std::fprintf(stderr, "error: close: %s\n", error.c_str());
    return 1;
  }
  return 0;
}

int cmd_stats(util::Cli& cli) {
  const auto dir = cli.flag_string("dir", "mis-service", "service directory");
  const bool json = cli.flag_bool("json", false, "emit machine-readable JSON");
  cli.finish();

  struct SegmentRow {
    service::SegmentInfo info;
    std::uint64_t records = 0;
    std::uint64_t end_lsn = 0;
    const char* tail = "unreadable";
    std::string detail;
  };
  const auto checkpoints = service::list_checkpoints(dir);

  // Shallow-open each checkpoint: O(header) per file, and mincore tells us
  // how much of the mapping is actually resident — the footprint a borrowed
  // recovery would start from, vs the full file a materialized load copies.
  struct CheckpointRow {
    std::uint64_t bytes = 0;
    std::uint64_t resident = 0;
    const char* map_mode = "unreadable";
  };
  std::vector<CheckpointRow> cp_rows;
  cp_rows.reserve(checkpoints.size());
  for (const auto& cp : checkpoints) {
    CheckpointRow row;
    graph::Snapshot snap;
    std::string err;
    if (snap.open(cp.path, &err, /*force_read=*/false,
                  graph::SnapshotValidation::kShallow)) {
      row.bytes = snap.file_size();
      row.resident = snap.resident_bytes();
      row.map_mode = snap.is_mapped() ? "mmap" : "read";
    }
    cp_rows.push_back(row);
  }
  // What MisService::open will do with the newest checkpoint by default.
  const char* open_mode =
      service::ServiceConfig{}.borrow ? "borrowed" : "materialized";

  std::vector<std::string> skipped;
  const auto segments = service::list_segments(dir, &skipped);
  std::vector<SegmentRow> rows;
  rows.reserve(segments.size());
  for (const auto& seg : segments) {
    SegmentRow row;
    row.info = seg;
    row.end_lsn = seg.base_lsn;
    service::WalSegmentReader reader;
    std::string error;
    if (reader.open(seg.path, &error)) {
      service::WalRecordView view;
      service::WalSegmentReader::Next state;
      while ((state = reader.next(&view)) == service::WalSegmentReader::Next::kRecord)
        ++row.records;
      row.end_lsn = reader.next_lsn();
      row.tail = state == service::WalSegmentReader::Next::kSealed ? "sealed"
                 : state == service::WalSegmentReader::Next::kEnd  ? "unsealed"
                                                                   : "torn";
      if (state == service::WalSegmentReader::Next::kTorn)
        row.detail = reader.tail_detail();
    } else {
      row.detail = error;
    }
    rows.push_back(std::move(row));
  }

  if (json) {
    std::printf("{\n  \"dir\": \"%s\",\n  \"open_mode\": \"%s\",\n"
                "  \"checkpoints\": [",
                dir.c_str(), open_mode);
    for (std::size_t i = 0; i < checkpoints.size(); ++i)
      std::printf("%s\n    {\"path\": \"%s\", \"lsn\": %llu, \"bytes\": %llu, "
                  "\"resident_bytes\": %llu, \"map_mode\": \"%s\"}",
                  i ? "," : "", checkpoints[i].path.c_str(),
                  static_cast<unsigned long long>(checkpoints[i].lsn),
                  static_cast<unsigned long long>(cp_rows[i].bytes),
                  static_cast<unsigned long long>(cp_rows[i].resident),
                  cp_rows[i].map_mode);
    std::printf("%s],\n  \"segments\": [", checkpoints.empty() ? "" : "\n  ");
    for (std::size_t i = 0; i < rows.size(); ++i)
      std::printf("%s\n    {\"path\": \"%s\", \"seq\": %llu, \"base_lsn\": %llu, "
                  "\"end_lsn\": %llu, \"records\": %llu, \"tail\": \"%s\"}",
                  i ? "," : "", rows[i].info.path.c_str(),
                  static_cast<unsigned long long>(rows[i].info.seq),
                  static_cast<unsigned long long>(rows[i].info.base_lsn),
                  static_cast<unsigned long long>(rows[i].end_lsn),
                  static_cast<unsigned long long>(rows[i].records), rows[i].tail);
    std::printf("%s],\n  \"skipped\": [", rows.empty() ? "" : "\n  ");
    for (std::size_t i = 0; i < skipped.size(); ++i)
      std::printf("%s\"%s\"", i ? ", " : "", skipped[i].c_str());
    std::printf("]\n}\n");
    return 0;
  }

  std::printf("%zu checkpoint(s), recovery opens %s:\n", checkpoints.size(),
              open_mode);
  for (std::size_t i = 0; i < checkpoints.size(); ++i)
    std::printf("  %s  lsn %llu  %llu of %llu bytes resident (%s)\n",
                checkpoints[i].path.c_str(),
                static_cast<unsigned long long>(checkpoints[i].lsn),
                static_cast<unsigned long long>(cp_rows[i].resident),
                static_cast<unsigned long long>(cp_rows[i].bytes),
                cp_rows[i].map_mode);
  std::printf("%zu wal segment(s):\n", rows.size());
  for (const auto& row : rows) {
    std::printf("  %s  seq %llu, lsn [%llu, %llu), %llu records, %s\n",
                row.info.path.c_str(), static_cast<unsigned long long>(row.info.seq),
                static_cast<unsigned long long>(row.info.base_lsn),
                static_cast<unsigned long long>(row.end_lsn),
                static_cast<unsigned long long>(row.records), row.tail);
    if (!row.detail.empty()) std::printf("    %s\n", row.detail.c_str());
  }
  for (const auto& s : skipped) std::printf("  skipped: %s\n", s.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <run|serve|recover|follow|promote|stats> [flags]\n"
                 "run a subcommand with --help for its flags\n",
                 argv[0]);
    return 2;
  }
  const std::string cmd = argv[1];
  dmis::util::Cli cli(argc - 1, argv + 1);
  if (cmd == "run") return cmd_run(cli);
  if (cmd == "serve") return cmd_serve(cli);
  if (cmd == "recover") return cmd_recover(cli);
  if (cmd == "follow") return cmd_follow(cli);
  if (cmd == "promote") return cmd_promote(cli);
  if (cmd == "stats") return cmd_stats(cli);
  std::fprintf(stderr,
               "unknown subcommand '%s' (want run|serve|recover|follow|promote|stats)\n",
               cmd.c_str());
  return 2;
}
